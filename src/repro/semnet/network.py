"""The semantic network graph (paper Definition 2).

:class:`SemanticNetwork` stores concepts and typed relations and provides
every query the disambiguation framework needs:

* sense inventory lookups (``senses(word)``, ``has_word``, polysemy);
* taxonomic queries for edge/node-based similarity (hypernym closures,
  depths, lowest common subsumer);
* breadth-first *rings* and *spheres* over all semantic relations, the
  SN-side counterpart of the paper's XML sphere neighborhood
  (Section 3.5.2);
* corpus frequencies and cumulative frequencies for the weighted
  network ``SN-bar`` used by information-content measures.

Adding an edge automatically adds its inverse, so traversals never need
to special-case direction.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Iterable, Iterator

from .concepts import Concept, Edge, Relation


class UnknownConceptError(KeyError):
    """Raised when a concept id is not present in the network."""


class SemanticNetwork:
    """A mutable semantic network; freeze-free but caches are invalidated
    on mutation, so build fully before heavy querying for best speed."""

    def __init__(self, name: str = "semnet"):
        self.name = name
        self._concepts: dict[str, Concept] = {}
        self._by_word: dict[str, list[str]] = {}
        self._edges: dict[str, dict[Relation, list[str]]] = {}
        self._max_polysemy: int | None = None
        self._depth_cache: dict[str, int] = {}
        self._cumfreq_cache: dict[str, float] | None = None
        self._fingerprint: str | None = None

    # -- construction -------------------------------------------------------

    def add_concept(self, concept: Concept) -> Concept:
        """Register a concept; ids must be unique."""
        if concept.id in self._concepts:
            raise ValueError(f"duplicate concept id {concept.id!r}")
        self._concepts[concept.id] = concept
        for word in concept.words:
            self._by_word.setdefault(word, []).append(concept.id)
        self._edges.setdefault(concept.id, {})
        self._invalidate()
        return concept

    def add_relation(self, source: str, relation: Relation, target: str) -> None:
        """Add ``source --relation--> target`` plus the inverse edge."""
        if source not in self._concepts:
            raise UnknownConceptError(source)
        if target not in self._concepts:
            raise UnknownConceptError(target)
        self._add_directed(source, relation, target)
        self._add_directed(target, relation.inverse, source)
        self._invalidate()

    def _add_directed(self, source: str, relation: Relation, target: str) -> None:
        targets = self._edges.setdefault(source, {}).setdefault(relation, [])
        if target not in targets:
            targets.append(target)

    def _invalidate(self) -> None:
        self._max_polysemy = None
        self._depth_cache.clear()
        self._cumfreq_cache = None
        self._fingerprint = None

    # -- basic lookups ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._concepts)

    def __contains__(self, concept_id: str) -> bool:
        return concept_id in self._concepts

    def __iter__(self) -> Iterator[Concept]:
        return iter(self._concepts.values())

    def concept(self, concept_id: str) -> Concept:
        """The concept with this id; raises :class:`UnknownConceptError`."""
        try:
            return self._concepts[concept_id]
        except KeyError:
            raise UnknownConceptError(concept_id) from None

    def concepts(self) -> list[Concept]:
        """All concepts (insertion order)."""
        return list(self._concepts.values())

    def words(self) -> list[str]:
        """Every distinct word/expression in the network."""
        return list(self._by_word)

    def has_word(self, word: str) -> bool:
        """True when some concept lists ``word`` among its synonyms."""
        return word.lower() in self._by_word

    def senses(self, word: str) -> list[Concept]:
        """All senses of ``word``, in sense-rank (registration) order."""
        return [self._concepts[cid] for cid in self._by_word.get(word.lower(), [])]

    def polysemy(self, word: str) -> int:
        """Number of senses of ``word`` (0 when unknown)."""
        return len(self._by_word.get(word.lower(), []))

    def set_sense_order(self, word: str, ordered_ids: list[str]) -> None:
        """Set the sense ranking of ``word`` explicitly.

        By default senses rank in registration order; loaders with an
        external ranking (e.g. WordNet's ``index`` files, ordered by
        tagged-corpus frequency) override it here.  ``ordered_ids`` must
        be a permutation of the word's current sense ids.
        """
        word = word.lower()
        current = self._by_word.get(word)
        if current is None:
            raise KeyError(f"unknown word {word!r}")
        if sorted(ordered_ids) != sorted(current):
            raise ValueError(
                f"sense order for {word!r} must permute {sorted(current)}"
            )
        self._by_word[word] = list(ordered_ids)
        self._fingerprint = None

    @property
    def max_polysemy(self) -> int:
        """``Max(senses(SN))`` — the highest polysemy of any word.

        In WordNet 2.1 this is 33 (the word *head*); the curated lexicon
        reproduces that extreme so normalization behaves like the paper's.
        """
        if self._max_polysemy is None:
            self._max_polysemy = max(
                (len(ids) for ids in self._by_word.values()), default=1
            )
        return self._max_polysemy

    # -- neighborhood queries ------------------------------------------------------

    def related(
        self, concept_id: str, relations: Iterable[Relation] | None = None
    ) -> list[tuple[Relation, str]]:
        """Outgoing (relation, target-id) pairs from ``concept_id``."""
        if concept_id not in self._concepts:
            raise UnknownConceptError(concept_id)
        edge_map = self._edges.get(concept_id, {})
        wanted = set(relations) if relations is not None else None
        out: list[tuple[Relation, str]] = []
        for relation, targets in edge_map.items():
            if wanted is not None and relation not in wanted:
                continue
            out.extend((relation, target) for target in targets)
        return out

    def neighbors(
        self, concept_id: str, relations: Iterable[Relation] | None = None
    ) -> list[str]:
        """Target concept ids adjacent to ``concept_id``."""
        return [target for _rel, target in self.related(concept_id, relations)]

    def edges(self) -> list[Edge]:
        """Every directed edge in the network."""
        out = []
        for source, edge_map in self._edges.items():
            for relation, targets in edge_map.items():
                out.extend(Edge(source, target, relation) for target in targets)
        return out

    def hypernyms(self, concept_id: str) -> list[str]:
        """Direct IS-A parents of a concept (empty at taxonomy roots)."""
        return self._edges.get(concept_id, {}).get(Relation.HYPERNYM, [])

    def hyponyms(self, concept_id: str) -> list[str]:
        """Direct IS-A children of a concept."""
        return self._edges.get(concept_id, {}).get(Relation.HYPONYM, [])

    # -- rings and spheres (Section 3.5.2) -------------------------------------------

    def sphere(
        self,
        concept_id: str,
        radius: int,
        relations: Iterable[Relation] | None = None,
    ) -> dict[str, int]:
        """Concept ids within ``radius`` hops, mapped to their distance.

        The center itself is included at distance 0, mirroring the XML
        sphere neighborhood which includes the target node.  Rings over a
        semantic network follow *semantic* relations instead of XML
        containment edges (paper Section 3.5.2).
        """
        if concept_id not in self._concepts:
            raise UnknownConceptError(concept_id)
        wanted = tuple(relations) if relations is not None else None
        distances = {concept_id: 0}
        queue: deque[str] = deque([concept_id])
        while queue:
            current = queue.popleft()
            d = distances[current]
            if d == radius:
                continue
            for neighbor in self.neighbors(current, wanted):
                if neighbor not in distances:
                    distances[neighbor] = d + 1
                    queue.append(neighbor)
        return distances

    def ring(
        self,
        concept_id: str,
        distance: int,
        relations: Iterable[Relation] | None = None,
    ) -> list[str]:
        """Concept ids at exactly ``distance`` hops from ``concept_id``."""
        sphere = self.sphere(concept_id, distance, relations)
        return [cid for cid, d in sphere.items() if d == distance]

    # -- taxonomy queries ------------------------------------------------------------

    def roots(self) -> list[str]:
        """Concepts with no hypernym (taxonomy roots)."""
        return [cid for cid in self._concepts if not self.hypernyms(cid)]

    def hypernym_closure(self, concept_id: str) -> dict[str, int]:
        """All ancestors via IS-A, mapped to their minimal hop distance.

        Includes the concept itself at distance 0.
        """
        if concept_id not in self._concepts:
            raise UnknownConceptError(concept_id)
        distances = {concept_id: 0}
        queue: deque[str] = deque([concept_id])
        while queue:
            current = queue.popleft()
            for parent in self.hypernyms(current):
                if parent not in distances:
                    distances[parent] = distances[current] + 1
                    queue.append(parent)
        return distances

    def depth(self, concept_id: str) -> int:
        """Minimal number of IS-A edges from a root down to this concept."""
        cached = self._depth_cache.get(concept_id)
        if cached is not None:
            return cached
        closure = self.hypernym_closure(concept_id)
        root_distances = [
            dist for cid, dist in closure.items() if not self.hypernyms(cid)
        ]
        depth = min(root_distances) if root_distances else 0
        self._depth_cache[concept_id] = depth
        return depth

    @property
    def max_taxonomy_depth(self) -> int:
        """Deepest concept depth (for Leacock-Chodorow normalization)."""
        return max((self.depth(cid) for cid in self._concepts), default=1)

    def lowest_common_subsumer(self, a: str, b: str) -> str | None:
        """The deepest shared IS-A ancestor of ``a`` and ``b`` (or None).

        The tie-break key ``(depth, -distance-sum, concept-id)`` is a
        *total* order: without the id component, exact depth/distance
        ties would fall back to set-iteration order, which varies with
        ``PYTHONHASHSEED`` — unacceptable for cross-process determinism.
        """
        closure_a = self.hypernym_closure(a)
        closure_b = self.hypernym_closure(b)
        shared = set(closure_a) & set(closure_b)
        if not shared:
            return None
        return max(
            shared,
            key=lambda cid: (
                self.depth(cid), -closure_a[cid] - closure_b[cid], cid
            ),
        )

    def taxonomic_distance(self, a: str, b: str) -> int | None:
        """Shortest IS-A path length between two concepts (via their LCS)."""
        lcs = self.lowest_common_subsumer(a, b)
        if lcs is None:
            return None
        return self.hypernym_closure(a)[lcs] + self.hypernym_closure(b)[lcs]

    # -- frequencies / weighted network ------------------------------------------------

    def set_frequency(self, concept_id: str, frequency: float) -> None:
        """Set the corpus occurrence count of one concept (``SN-bar``)."""
        self.concept(concept_id).frequency = float(frequency)
        self._cumfreq_cache = None
        self._fingerprint = None

    def cumulative_frequency(self, concept_id: str) -> float:
        """Frequency of the concept plus all IS-A descendants.

        This is the count used by Resnik-style information content:
        observing any hyponym is evidence for the ancestor class.
        """
        if self._cumfreq_cache is None:
            self._compute_cumulative_frequencies()
        assert self._cumfreq_cache is not None
        if concept_id not in self._concepts:
            raise UnknownConceptError(concept_id)
        return self._cumfreq_cache[concept_id]

    def _compute_cumulative_frequencies(self) -> None:
        """One bottom-up pass over the IS-A DAG (memoized DFS)."""
        cache: dict[str, float] = {}

        def visit(cid: str, trail: set[str]) -> float:
            if cid in cache:
                return cache[cid]
            if cid in trail:  # defensive: a cycle would otherwise hang
                return 0.0
            trail.add(cid)
            total = self._concepts[cid].frequency
            for child in self.hyponyms(cid):
                total += visit(child, trail)
            trail.discard(cid)
            cache[cid] = total
            return total

        for cid in self._concepts:
            visit(cid, set())
        self._cumfreq_cache = cache

    @property
    def total_frequency(self) -> float:
        """Sum of all concept frequencies (the corpus size proxy)."""
        return sum(concept.frequency for concept in self._concepts.values())

    # -- misc -------------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Content digest of the network, stable across processes.

        Hashes every input the disambiguation pipeline reads: concept
        ids, synonym words, glosses, POS tags, frequencies, the
        per-word sense *ranking* (``set_sense_order`` changes it without
        adding content), and every typed edge — all in sorted order so
        the digest is independent of construction order and
        ``PYTHONHASHSEED``.  Memoization layers that key results across
        documents (:mod:`repro.runtime.memo`) fold this digest into
        their keys so a mutated network can never serve stale entries;
        the digest is cached and recomputed only after mutation.
        """
        if self._fingerprint is not None:
            return self._fingerprint
        hasher = hashlib.sha256()
        update = hasher.update
        for cid in sorted(self._concepts):
            concept = self._concepts[cid]
            update(repr((
                cid, concept.words, concept.gloss, concept.pos,
                # float() so an int-frequency network (Concept declares
                # float, but callers may pass ints) hashes the same
                # after a JSON save -> load coerces it to float.
                float(concept.frequency),
            )).encode("utf-8"))
        for word in sorted(self._by_word):
            update(repr((word, tuple(self._by_word[word]))).encode("utf-8"))
        for source in sorted(self._edges):
            edge_map = self._edges[source]
            for relation in sorted(edge_map, key=lambda r: r.value):
                # Targets sorted: edge *membership* is content, edge
                # insertion order is not (save -> load canonicalizes
                # relation order, and the digest must survive it).
                update(repr(
                    (source, relation.value, tuple(sorted(edge_map[relation])))
                ).encode("utf-8"))
        self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    def stats(self) -> dict[str, float]:
        """Summary statistics (useful in docs/tests/benchmarks)."""
        n_edges = sum(
            len(targets)
            for edge_map in self._edges.values()
            for targets in edge_map.values()
        )
        return {
            "concepts": len(self._concepts),
            "words": len(self._by_word),
            "directed_edges": n_edges,
            "max_polysemy": self.max_polysemy,
            "roots": len(self.roots()),
            "max_depth": self.max_taxonomy_depth,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SemanticNetwork({self.name!r}, {len(self)} concepts)"
