"""Semantic network validation.

User-supplied networks (via :mod:`repro.semnet.io`) can violate the
invariants the disambiguation machinery relies on; this module checks
them and reports every problem at once:

* IS-A cycles (would hang cumulative-frequency and closure walks);
* multiple taxonomy roots / concepts detached from any root (break
  Wu-Palmer depth comparisons across the detached parts);
* empty glosses (starve the gloss-based measure);
* duplicate words within one concept;
* zero total frequency (starves information content).

Problems are reported as warnings or errors; only errors make a network
unusable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .network import SemanticNetwork


@dataclass(frozen=True)
class Issue:
    """One validation finding."""

    severity: str  # "error" | "warning"
    code: str
    message: str

    @property
    def is_error(self) -> bool:
        """True for error-severity issues (warnings pass validation)."""
        return self.severity == "error"


@dataclass
class ValidationReport:
    """All findings for one network."""

    issues: list[Issue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings allowed)."""
        return not any(issue.is_error for issue in self.issues)

    def errors(self) -> list[Issue]:
        """Only the error-severity issues."""
        return [issue for issue in self.issues if issue.is_error]

    def warnings(self) -> list[Issue]:
        """Only the warning-severity issues."""
        return [issue for issue in self.issues if not issue.is_error]

    def _add(self, severity: str, code: str, message: str) -> None:
        self.issues.append(Issue(severity, code, message))


def validate_network(network: SemanticNetwork) -> ValidationReport:
    """Run all checks; returns a report (never raises)."""
    report = ValidationReport()
    if len(network) == 0:
        report._add("error", "empty", "network has no concepts")
        return report
    _check_isa_cycles(network, report)
    _check_roots(network, report)
    _check_concepts(network, report)
    _check_frequencies(network, report)
    return report


def _check_isa_cycles(network: SemanticNetwork, report: ValidationReport) -> None:
    """Depth-first cycle detection over HYPERNYM edges."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[str, int] = {c.id: WHITE for c in network}
    for start in color:
        if color[start] != WHITE:
            continue
        stack: list[tuple[str, int]] = [(start, 0)]
        while stack:
            node, child_index = stack[-1]
            if child_index == 0:
                color[node] = GRAY
            parents = network.hypernyms(node)
            if child_index < len(parents):
                stack[-1] = (node, child_index + 1)
                parent = parents[child_index]
                if color[parent] == GRAY:
                    report._add(
                        "error", "isa-cycle",
                        f"IS-A cycle through {parent!r} and {node!r}",
                    )
                elif color[parent] == WHITE:
                    stack.append((parent, 0))
            else:
                color[node] = BLACK
                stack.pop()


def _check_roots(network: SemanticNetwork, report: ValidationReport) -> None:
    roots = network.roots()
    if len(roots) > 1:
        report._add(
            "warning", "multiple-roots",
            f"{len(roots)} taxonomy roots: {sorted(roots)[:5]}...; "
            "edge-based similarity is 0 across detached parts",
        )


def _check_concepts(network: SemanticNetwork, report: ValidationReport) -> None:
    for concept in network:
        if not concept.gloss.strip():
            report._add(
                "warning", "empty-gloss",
                f"{concept.id} has no gloss (gloss measure starved)",
            )
        if len(set(concept.words)) != len(concept.words):
            report._add(
                "error", "duplicate-words",
                f"{concept.id} lists a word twice: {concept.words}",
            )


def _check_frequencies(network: SemanticNetwork, report: ValidationReport) -> None:
    if network.total_frequency <= 0:
        report._add(
            "warning", "no-frequencies",
            "all concept frequencies are zero; information content will "
            "rely entirely on smoothing (consider corpus.weight_network)",
        )
