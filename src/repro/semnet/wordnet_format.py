"""Loader for the standard WordNet database ("wndb") file format.

The reproduction ships a curated mini-WordNet because the real database
cannot be redistributed here — but users who *have* a WordNet
installation (e.g. ``/usr/share/wordnet`` or NLTK's ``wordnet`` corpus
directory) can load it directly and run XSDF over the real thing::

    from repro.semnet.wordnet_format import load_wordnet_nouns
    network = load_wordnet_nouns("/usr/share/wordnet")

Parses the noun database per ``wndb(5WN)``:

* ``data.noun`` — one synset per line::

      offset lex_filenum ss_type w_cnt word lex_id [word lex_id ...]
      p_cnt [ptr_symbol offset pos source_target ...] | gloss

* ``index.noun`` — one lemma per line, listing its synset offsets in
  sense-rank order (most frequent first); applied via
  :meth:`SemanticNetwork.set_sense_order`.

Pointer symbols map onto this package's :class:`Relation` enum; symbols
without a counterpart (antonyms, domain links, ...) are skipped.
Concept ids are ``<first-lemma>.n.<offset>`` — stable across loads of
the same database version.
"""

from __future__ import annotations

from pathlib import Path

from .concepts import Concept, Relation
from .network import SemanticNetwork

#: wndb pointer symbol -> our relation (noun pointers we can represent).
POINTER_SYMBOLS: dict[str, Relation] = {
    "@": Relation.HYPERNYM,
    "@i": Relation.HYPERNYM,    # instance hypernym
    "~": Relation.HYPONYM,
    "~i": Relation.HYPONYM,     # instance hyponym
    "#p": Relation.PART_HOLONYM,
    "%p": Relation.PART_MERONYM,
    "#m": Relation.MEMBER_HOLONYM,
    "%m": Relation.MEMBER_MERONYM,
    "=": Relation.ATTRIBUTE,
    "+": Relation.DERIVATION,
    "&": Relation.SIMILAR,
}


class WordNetFormatError(ValueError):
    """Raised when a wndb line cannot be parsed."""


def _clean_lemma(raw: str) -> str:
    """wndb lemma -> plain word: underscores to spaces, drop syntactic
    markers like ``(p)``, lowercase."""
    word = raw.replace("_", " ").lower()
    if word.endswith(")") and "(" in word:
        word = word[: word.rindex("(")]
    return word.strip()


def parse_data_line(line: str) -> tuple[str, list[str], str, list[tuple[Relation, str]]]:
    """Parse one ``data.noun`` line.

    Returns ``(offset, words, gloss, [(relation, target_offset), ...])``.
    """
    body, _, gloss = line.partition("|")
    fields = body.split()
    if len(fields) < 4:
        raise WordNetFormatError(f"short data line: {line[:60]!r}")
    offset = fields[0]
    try:
        w_cnt = int(fields[3], 16)
    except ValueError:
        raise WordNetFormatError(f"bad word count in: {line[:60]!r}")
    cursor = 4
    words = []
    for _ in range(w_cnt):
        words.append(_clean_lemma(fields[cursor]))
        cursor += 2  # skip lex_id
    try:
        p_cnt = int(fields[cursor])
    except (IndexError, ValueError):
        raise WordNetFormatError(f"bad pointer count in: {line[:60]!r}")
    cursor += 1
    pointers: list[tuple[Relation, str]] = []
    for _ in range(p_cnt):
        try:
            symbol, target, pos, _source_target = fields[cursor : cursor + 4]
        except ValueError:
            raise WordNetFormatError(f"truncated pointer in: {line[:60]!r}")
        cursor += 4
        if pos != "n":
            continue  # cross-POS pointers need the other databases
        relation = POINTER_SYMBOLS.get(symbol)
        if relation is not None:
            pointers.append((relation, target))
    return offset, words, gloss.strip(), pointers


def parse_index_line(line: str) -> tuple[str, list[str]]:
    """Parse one ``index.noun`` line into ``(lemma, ordered offsets)``."""
    fields = line.split()
    if len(fields) < 6:
        raise WordNetFormatError(f"short index line: {line[:60]!r}")
    lemma = _clean_lemma(fields[0])
    synset_cnt = int(fields[2])
    p_cnt = int(fields[3])
    offsets = fields[4 + p_cnt + 2 :]
    if len(offsets) != synset_cnt:
        raise WordNetFormatError(
            f"index offsets mismatch for {lemma!r}: {line[:60]!r}"
        )
    return lemma, offsets


def load_wordnet_nouns(
    directory: str | Path,
    name: str = "wordnet-nouns",
) -> SemanticNetwork:
    """Load ``data.noun`` + ``index.noun`` from a WordNet ``dict`` dir.

    Relations whose target offset is missing from the data file are
    skipped (rather than failing), since partial extracts are common.
    """
    directory = Path(directory)
    data_path = directory / "data.noun"
    index_path = directory / "index.noun"
    network = SemanticNetwork(name)

    id_by_offset: dict[str, str] = {}
    pending: list[tuple[str, Relation, str]] = []
    with open(data_path, encoding="utf-8") as handle:
        for line in handle:
            if line.startswith("  ") or not line.strip():
                continue  # license header / blanks
            offset, words, gloss, pointers = parse_data_line(line)
            concept_id = f"{words[0].replace(' ', '_')}.n.{offset}"
            id_by_offset[offset] = concept_id
            network.add_concept(
                Concept(id=concept_id, words=tuple(dict.fromkeys(words)),
                        gloss=gloss)
            )
            pending.extend(
                (concept_id, relation, target) for relation, target in pointers
            )
    for source_id, relation, target_offset in pending:
        target_id = id_by_offset.get(target_offset)
        if target_id is not None:
            network.add_relation(source_id, relation, target_id)

    if index_path.exists():
        with open(index_path, encoding="utf-8") as handle:
            for line in handle:
                if line.startswith("  ") or not line.strip():
                    continue
                lemma, offsets = parse_index_line(line)
                ordered = [
                    id_by_offset[offset]
                    for offset in offsets
                    if offset in id_by_offset
                ]
                if ordered and network.has_word(lemma):
                    current = {c.id for c in network.senses(lemma)}
                    if set(ordered) == current:
                        network.set_sense_order(lemma, ordered)
    return network
