"""Long-lived disambiguation service over the batch runtime.

``repro serve`` turns the one-shot ``repro batch`` pipeline into a
resident daemon: the semantic network is loaded once, the
:class:`~repro.runtime.pack.PackedIndex` is built once, and the
pair/sense/document LRUs plus the :class:`~repro.runtime.memo
.SphereMemo` stay warm across requests — exactly the state whose 84%
memo hit rate and repeated-document speedups a per-invocation process
throws away.  Served results are byte-identical to ``repro batch`` on
the same input and configuration.

* :mod:`~repro.server.protocol` — a from-scratch, stdlib-asyncio
  HTTP/1.1 slice: bounded request parsing, fixed-length JSON responses,
  chunk-per-line NDJSON streaming;
* :mod:`~repro.server.envelopes` — request parsing (raw XML or JSON
  envelope with per-request config overrides) and the
  ``DocOutcome``-shaped error envelopes that replace batch exit codes;
* :mod:`~repro.server.ratelimit` — bounded per-client token buckets
  (429 + ``Retry-After``);
* :mod:`~repro.server.app` — :class:`ServerApp`: warm session pool,
  admission control, the three endpoints (``POST /v1/disambiguate``,
  ``GET /healthz``, ``GET /metrics``);
* :mod:`~repro.server.lifecycle` — :class:`ReproServer`: listener,
  SIGTERM/SIGINT graceful drain (stop accepting, finish in-flight,
  flush metrics, exit 0).

Typical use::

    from repro.semnet import default_lexicon
    from repro.server import ReproServer, ServerApp, ServerConfig

    app = ServerApp(default_lexicon(), server_config=ServerConfig(port=8750))
    raise SystemExit(ReproServer(app).serve())
"""

from .app import ServerApp, ServerConfig, run_one_document
from .envelopes import (
    APPROACHES,
    DisambiguationRequest,
    EnvelopeError,
    apply_overrides,
    envelope_payload,
    parse_disambiguation_request,
)
from .lifecycle import ReproServer, announce_to_stderr
from .protocol import (
    ChunkedNDJSONWriter,
    HTTPRequest,
    ProtocolError,
    read_request,
    write_json_response,
)
from .ratelimit import RateLimiter, TokenBucket

__all__ = [
    "APPROACHES",
    "ChunkedNDJSONWriter",
    "DisambiguationRequest",
    "EnvelopeError",
    "HTTPRequest",
    "ProtocolError",
    "RateLimiter",
    "ReproServer",
    "ServerApp",
    "ServerConfig",
    "TokenBucket",
    "announce_to_stderr",
    "apply_overrides",
    "envelope_payload",
    "parse_disambiguation_request",
    "read_request",
    "run_one_document",
    "write_json_response",
]
