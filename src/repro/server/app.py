"""The disambiguation service application: routing, sessions, streaming.

:class:`ServerApp` is the long-lived core the daemon keeps warm.  At
startup it loads the semantic network once, builds one shared
:class:`~repro.runtime.pack.PackedIndex`, and wraps the default
configuration in a resident :class:`~repro.runtime.executor
.BatchExecutor` *session* — which is exactly the serial batch path, so
the pair/sense/document LRUs, the :class:`~repro.runtime.memo
.SphereMemo`, and the metrics registry all survive across requests
instead of dying with a process.  A request's NDJSON record line is
therefore **byte-identical** to the ``repro batch`` JSONL line for the
same (name, document, config) — the test battery pins this under both
cold and warm caches.

Per-request ``config`` overrides get their own bounded session pool
keyed by :func:`~repro.runtime.memo.config_fingerprint`; every session
shares the one packed index (no rebuild, ever) but owns its caches,
because cache keys are only sound within one frozen configuration.

Scoring is CPU-bound and runs on a single dedicated worker thread: the
event loop stays free to accept connections, answer ``/healthz`` and
``/metrics``, and enforce limits while a document scores, and the
single thread serializes cache access exactly like the serial batch
path (concurrent clients are deterministic by construction).  Like the
PR-5 serial path, a request timeout cannot kill the scoring thread —
the client gets its ``stage="timeout"`` envelope immediately and the
straggler's work is discarded on completion.

Endpoints
---------
``POST /v1/disambiguate``
    NDJSON stream: one ``{"annotation": ...}`` line per resolved node,
    then the batch-identical record line, then the ``DocOutcome``
    envelope line.
``GET /healthz``
    Readiness + index fingerprint + uptime.
``GET /metrics``
    The full :class:`~repro.runtime.metrics.MetricsRegistry` snapshot,
    same schema as ``repro batch --metrics-json``.
"""

from __future__ import annotations

import asyncio
import math
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from .. import __version__
from ..core.config import XSDFConfig
from ..runtime.executor import (
    DEFAULT_CACHE_SIZE,
    BatchExecutor,
    BatchRecord,
)
from ..runtime.memo import config_fingerprint
from ..runtime.metrics import MetricsRegistry
from ..runtime.pack import PackedIndex
from ..runtime.store import NetworkRegistry
from ..runtime.resilience import STATUS_FAILED, DocOutcome
from ..semnet.network import SemanticNetwork
from .envelopes import (
    EnvelopeError,
    apply_overrides,
    envelope_payload,
    parse_disambiguation_request,
)
from .protocol import (
    DEFAULT_MAX_BODY_BYTES,
    ChunkedNDJSONWriter,
    HTTPRequest,
    write_json_response,
)
from .ratelimit import RateLimiter


@dataclass(frozen=True)
class ServerConfig:
    """Operational knobs of the daemon (the pipeline knobs live in
    :class:`~repro.core.config.XSDFConfig`)."""

    host: str = "127.0.0.1"
    port: int = 8750
    max_concurrency: int = 8
    rate_limit: float = 0.0
    burst: int = 8
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    request_timeout: float | None = None
    drain_timeout: float = 10.0
    metrics_json: str | None = None
    max_sessions: int = 8
    packed: bool = True
    cache_size: int = DEFAULT_CACHE_SIZE
    workers: int = 1
    #: RXPD shard to mmap-attach the served index from (skips the
    #: startup index build; fingerprint-checked against the network).
    shard: "str | None" = None
    #: registry.toml manifest: serve every listed domain, selected per
    #: request by the envelope's ``domain`` key.
    registry: "str | None" = None
    #: The source network JSON behind ``shard`` (the CLI's --network):
    #: lets the scrubber re-pack a quarantined shard automatically.
    network_path: "str | None" = None
    #: Scrub one bounded slice of every attached shard each interval
    #: (seconds); 0 disables the background integrity scrubber.
    scrub_interval: float = 0.0
    #: Bytes re-verified per scrub slice.
    scrub_slice_bytes: int = 1 << 20
    #: Re-pack a quarantined shard from its source network when known.
    scrub_repair: bool = True
    #: Poll the registry manifest + shard files for changes and hot
    #: reload (seconds); 0 means SIGHUP-only reloads.
    reload_interval: float = 0.0

    def __post_init__(self) -> None:
        if self.shard and self.registry:
            raise ValueError(
                "shard and registry are mutually exclusive "
                "(the registry manifest already names each domain's shard)"
            )
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.rate_limit < 0:
            raise ValueError("rate_limit must be >= 0")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError("request_timeout must be > 0 (or None)")
        if self.drain_timeout < 0:
            raise ValueError("drain_timeout must be >= 0")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.scrub_interval < 0:
            raise ValueError("scrub_interval must be >= 0")
        if self.scrub_slice_bytes < 1:
            raise ValueError("scrub_slice_bytes must be >= 1")
        if self.reload_interval < 0:
            raise ValueError("reload_interval must be >= 0")


def run_one_document(session: BatchExecutor, name: str,
                     xml: str) -> BatchRecord:
    """Score one document through a resident session (worker thread).

    This is the whole bit-identity argument: the server calls the same
    ``BatchExecutor.run`` the CLI batch path calls, on the same
    resident caches, so the resulting record renders the same JSONL
    line.
    """
    return session.run([(name, xml)])[0]


def _close_stale(sessions: "OrderedDict[str, BatchExecutor]",
                 registry: "NetworkRegistry | None") -> None:
    """Close retired sessions (and registry) — submitted behind the
    scoring queue so in-flight requests finish on them first."""
    for session in sessions.values():
        session.close()
    if registry is not None:
        registry.close()


class ServerApp:
    """Everything the daemon keeps hot, plus the request handlers."""

    def __init__(
        self,
        network: SemanticNetwork,
        config: XSDFConfig | None = None,
        server_config: ServerConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.network = network
        self.config = config or XSDFConfig()
        self.server_config = server_config or ServerConfig()
        self.metrics = metrics or MetricsRegistry()
        self.limiter = RateLimiter(
            self.server_config.rate_limit, self.server_config.burst
        )
        self._started = time.monotonic()
        self._inflight = 0
        self._draining = False
        self._index = None
        self._registry: NetworkRegistry | None = None
        self._network_fingerprint: str | None = None
        self._sessions: "OrderedDict[str, BatchExecutor]" = OrderedDict()
        self._default_fingerprint: str | None = None
        self._scoring_pool: ThreadPoolExecutor | None = None
        # -- durability & supervision state --------------------------------
        self._scrubber = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        # Guards registry attach/damage calls, which may come from the
        # event loop (sessions) or the scoring thread (failover).
        self._registry_lock = threading.Lock()
        #: domain (or "default") -> damage kind, while failed over.
        self._degraded: dict[str, str] = {}
        self._reload_generation = 0
        self._reload_count = 0
        self._reload_error = ""
        self._watch_sig: "tuple | None" = None

    # -- lifecycle -----------------------------------------------------------

    def warm_up(self) -> None:
        """Build the shared index and the default session, eagerly.

        Called once before the listener opens so the first request pays
        no index-build latency and ``/healthz`` can report readiness
        truthfully.
        """
        if self._scoring_pool is None:
            self._scoring_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-score"
            )
        if self._default_fingerprint is None:
            with self.metrics.timer("server_warmup"):
                if self.server_config.registry and self._registry is None:
                    # The manifest's default domain becomes the served
                    # network; other domains attach lazily per request.
                    self._registry = NetworkRegistry.load(
                        self.server_config.registry
                    )
                    attached = self._registry.attach(
                        self._registry.default_domain
                    )
                    self.network = attached.network
                    self._index = attached.index
                    self._network_fingerprint = None
                elif self.server_config.shard and self._index is None:
                    # Zero-copy cold start: mmap the shard instead of
                    # building the index; the fingerprint check refuses
                    # a shard packed from a different network.
                    self._index = PackedIndex.from_mmap(
                        self.server_config.shard,
                        expect_fingerprint=self.network.fingerprint(),
                    )
                session = self._make_session(self.config, default=True)
                session.warm()
                self._index = session.index
                fingerprint = config_fingerprint(self.config)
                self._sessions[fingerprint] = session
                self._default_fingerprint = fingerprint

    @property
    def ready(self) -> bool:
        """Whether the index + default session have been built."""
        return self._default_fingerprint is not None

    @property
    def draining(self) -> bool:
        """Whether the daemon has stopped admitting new work."""
        return self._draining

    @property
    def inflight(self) -> int:
        """Disambiguation requests currently admitted."""
        return self._inflight

    def begin_drain(self) -> None:
        """Refuse new disambiguation work (in-flight requests finish)."""
        self._draining = True
        self.metrics.count("server_drains")
        self.metrics.event("server_drain", inflight=self._inflight)

    def close(self) -> None:
        """Release scoring thread, sessions' runtimes, and metrics.

        Every resident session drains its persistent pool and drops its
        shared-segment reference here, so a SIGTERM drain leaves no
        worker processes or ``/dev/shm`` entries behind.  The scrub
        thread is stopped and joined first — it must not report damage
        into a half-torn-down app.
        """
        if self._scrubber is not None:
            self._scrubber.stop()
            self._scrubber = None
        self._loop = None
        if self._scoring_pool is not None:
            self._scoring_pool.shutdown(wait=False, cancel_futures=True)
            self._scoring_pool = None
        while self._sessions:
            _, session = self._sessions.popitem()
            session.close()
        if self._registry is not None:
            self._registry.close()
            self._registry = None
        self._default_fingerprint = None
        if self.server_config.metrics_json:
            self.metrics.write_json(self.server_config.metrics_json)

    # -- durability: scrubbing, failover, hot reload -------------------------

    def start_supervision(self, loop: asyncio.AbstractEventLoop) -> None:
        """Start the shard scrubber and seed the reload watch state.

        Called by the server once the event loop exists (after
        ``warm_up``): the scrub thread reports damage back onto
        ``loop`` via :meth:`_on_scrub_damage`, and the watch signature
        snapshot is what :meth:`maybe_reload` compares against.
        """
        self._loop = loop
        self._watch_sig = self._watch_signature()
        sc = self.server_config
        if sc.scrub_interval > 0 and self._scrubber is None:
            from ..runtime.scrubber import ShardScrubber

            scrubber = ShardScrubber(
                slice_bytes=sc.scrub_slice_bytes,
                interval_s=sc.scrub_interval,
                metrics=self.metrics,
                on_damage=self._on_scrub_damage,
                repair=sc.scrub_repair,
            )
            scrubber.reset_targets(self._scrub_targets())
            self._scrubber = scrubber
            scrubber.start()

    def _scrub_targets(self) -> "list[tuple[str, str | None, str | None]]":
        """(shard, source network, domain) triples to keep scrubbed."""
        sc = self.server_config
        targets: list[tuple[str, "str | None", "str | None"]] = []
        if self._registry is not None:
            for name in self._registry.domains():
                entry = self._registry.entry(name)
                if entry.shard_path:
                    targets.append(
                        (entry.shard_path, entry.network_path, name)
                    )
        elif sc.shard:
            targets.append((sc.shard, sc.network_path, None))
        return targets

    def _on_scrub_damage(self, target, kind: str) -> None:
        """Scrub-thread callback: hand the failover to the event loop."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._apply_failover, target, kind)
        except RuntimeError:  # lint: disable=silent-degrade,handler-envelope  # shutdown race: the loop closed while the scrub thread was reporting
            pass

    def _apply_failover(self, target, kind: str) -> None:
        """Event loop: record damage, condemn the shard, queue rebuild.

        The actual rebuild runs on the single scoring thread — queued
        *behind* every admitted request, so in-flight scoring finishes
        on the old backing (whose reads survive through the resilience
        ladder) before the swap.
        """
        key = target.domain or "default"
        self._degraded[key] = kind
        self.metrics.count("server_degraded")
        self.metrics.event(
            "server_backing_damaged",
            domain=key, kind=kind, path=target.path,
        )
        if self._registry is not None:
            with self._registry_lock:
                self._registry.mark_damaged(target.path)
        pool = self._scoring_pool
        if pool is not None:
            pool.submit(self._rebuild_backing, target.domain)

    def _rebuild_backing(self, domain: "str | None") -> None:
        """Scoring thread: build the replacement (heap) backing.

        Serialized after all queued scoring by the single-worker pool;
        installation hops back to the event loop.
        """
        loop = self._loop
        try:
            index = None
            if domain is None or (
                self._registry is not None
                and domain == self._registry.default_domain
            ):
                # The default backing: heap-build from the served
                # network (the mmap fast path is gone until repair).
                index = PackedIndex(self.network)
            elif self._registry is not None:
                # Re-attach under the damage mark: the registry skips
                # the condemned shard and heap-builds for the domain.
                with self._registry_lock:
                    self._registry.attach(domain)
            if loop is not None and not loop.is_closed():
                loop.call_soon_threadsafe(
                    self._install_backing, domain, index
                )
        except Exception as exc:  # lint: disable=broad-except,handler-envelope  # failover is last-resort: a failed rebuild must surface as an event, not kill the scoring thread
            self.metrics.event(
                "server_failover_failed",
                domain=domain or "default", error=str(exc),
            )

    def _install_backing(self, domain: "str | None",
                         index: "PackedIndex | None") -> None:
        """Event loop: atomically swap sessions onto the new backing.

        Old sessions are closed on the scoring thread *after* any
        queued work — the in-flight-requests-finish-first guarantee.
        """
        stale: "OrderedDict[str, BatchExecutor]" = OrderedDict()
        if index is not None:
            self._index = index
            stale = self._sessions
            self._sessions = OrderedDict()
            session = self._make_session(self.config, default=True)
            fingerprint = config_fingerprint(self.config)
            self._sessions[fingerprint] = session
            self._default_fingerprint = fingerprint
        elif domain is not None:
            prefix = f"{domain}|"
            for key in [k for k in self._sessions if k.startswith(prefix)]:
                stale[key] = self._sessions.pop(key)
        self._defer_close(stale)
        self.metrics.count("server_failovers")
        self.metrics.event(
            "server_failover",
            domain=domain or "default",
            backing=getattr(self._index, "backing", "heap"),
        )

    def _defer_close(self, sessions: "OrderedDict[str, BatchExecutor]",
                     registry: "NetworkRegistry | None" = None) -> None:
        """Close old sessions behind the scoring queue (or inline)."""
        if not sessions and registry is None:
            return
        pool = self._scoring_pool
        if pool is not None:
            pool.submit(_close_stale, sessions, registry)
        else:
            _close_stale(sessions, registry)

    def _watch_paths(self) -> "list[str]":
        """The on-disk files whose change triggers a hot reload."""
        sc = self.server_config
        paths: list[str] = []
        if sc.registry:
            paths.append(sc.registry)
            if self._registry is not None:
                for name in self._registry.domains():
                    entry = self._registry.entry(name)
                    if entry.shard_path:
                        paths.append(entry.shard_path)
        elif sc.shard:
            paths.append(sc.shard)
        return paths

    def _watch_signature(self) -> tuple:
        """Fingerprint of every watched file (mtime + size)."""
        sig = []
        for path in self._watch_paths():
            try:
                stat = os.stat(path)
                sig.append((path, stat.st_mtime_ns, stat.st_size))
            except OSError:  # lint: disable=handler-envelope  # not a request path: a vanished watch file is itself the change signal
                sig.append((path, None, None))
        return tuple(sig)

    def maybe_reload(self) -> bool:
        """Reload iff a watched file changed since the last snapshot."""
        sig = self._watch_signature()
        if self._watch_sig is None:
            self._watch_sig = sig
            return False
        if sig == self._watch_sig:
            return False
        return self.reload()

    def reload(self) -> bool:
        """Atomically swap serving state from the on-disk sources.

        The reload contract: requests already admitted finish on the
        old sessions (closed behind the scoring queue); new requests
        see the new registry/shard; damage marks and degraded state
        clear (a repaired shard re-attaches); and a *failed* reload
        changes nothing — the old state keeps serving and the error is
        surfaced in ``/healthz`` and the metrics events.
        """
        sc = self.server_config
        try:
            with self.metrics.timer("server_reload"):
                old_registry = None
                if sc.registry:
                    registry = NetworkRegistry.load(sc.registry)
                    attached = registry.attach(registry.default_domain)
                    old_registry = self._registry
                    with self._registry_lock:
                        self._registry = registry
                    self.network = attached.network
                    new_index = attached.index
                elif sc.shard:
                    new_index = PackedIndex.from_mmap(
                        sc.shard,
                        expect_fingerprint=self.network.fingerprint(),
                    )
                else:
                    # Nothing reloadable on disk; count the request so
                    # operators see their SIGHUP landed.
                    self._reload_generation += 1
                    self.metrics.event("server_reload_noop")
                    return False
                self._index = new_index
                stale = self._sessions
                self._sessions = OrderedDict()
                session = self._make_session(self.config, default=True)
                fingerprint = config_fingerprint(self.config)
                self._sessions[fingerprint] = session
                self._default_fingerprint = fingerprint
                self._network_fingerprint = None
                self._defer_close(stale, registry=old_registry)
                self._degraded.clear()
                if self._scrubber is not None:
                    self._scrubber.reset_targets(self._scrub_targets())
                self._reload_generation += 1
                self._reload_count += 1
                self._reload_error = ""
                self._watch_sig = self._watch_signature()
                self.metrics.count("server_reloads")
                self.metrics.event(
                    "server_reload",
                    generation=self._reload_generation,
                    backing=getattr(self._index, "backing", "heap"),
                )
                return True
        except Exception as exc:  # lint: disable=broad-except,handler-envelope  # a failed reload must leave the old state serving, not kill the daemon; the error is surfaced via /healthz
            self._reload_error = str(exc)
            self.metrics.event("server_reload_failed", error=str(exc))
            return False

    def durability_stats(self) -> dict:
        """The scrub/reload/degraded block for ``/healthz``."""
        return {
            "degraded": dict(self._degraded),
            "reload": {
                "generation": self._reload_generation,
                "count": self._reload_count,
                "watching": self._watch_paths(),
                "interval_s": self.server_config.reload_interval,
                "last_error": self._reload_error,
            },
            "scrubber": (
                self._scrubber.stats()
                if self._scrubber is not None else None
            ),
        }

    # -- sessions ------------------------------------------------------------

    def _make_session(self, config: XSDFConfig, default: bool = False,
                      domain: "str | None" = None) -> BatchExecutor:
        # Only the default session is wired into the metrics registry:
        # cache gauges are registered by fixed name, and the resident
        # session is the one whose warmth the operator is tracking.
        # Override sessions still run, they just are not individually
        # gauged.  ``workers > 1`` sessions own a persistent worker
        # pool + shared index segment, reused across every request they
        # serve.  A ``domain`` session scores against that registry
        # domain's network and (usually mmap-attached) index.
        network, index = self.network, self._index
        if domain is not None and self._registry is not None:
            with self._registry_lock:
                attached = self._registry.attach(domain)
            network, index = attached.network, attached.index
        return BatchExecutor(
            network,
            config,
            workers=self.server_config.workers,
            packed=self.server_config.packed,
            cache_size=self.server_config.cache_size,
            metrics=self.metrics if default else None,
            index=index,
        )

    def session_for(self, config: XSDFConfig,
                    domain: "str | None" = None) -> BatchExecutor:
        """The resident session for this configuration (LRU-bounded).

        The default configuration's session is pinned; override
        sessions are created on demand, share the packed index, and are
        evicted least-recently-used beyond ``max_sessions``.  Registry
        domains get their own sessions — keyed by (domain, config
        fingerprint), because cache keys are only sound within one
        (network, configuration) pair.
        """
        fingerprint = config_fingerprint(config)
        if domain is not None:
            fingerprint = f"{domain}|{fingerprint}"
        session = self._sessions.get(fingerprint)
        if session is not None:
            self._sessions.move_to_end(fingerprint)
            return session
        session = self._make_session(config, domain=domain)
        self._sessions[fingerprint] = session
        self.metrics.count("server_sessions_created")
        while len(self._sessions) > self.server_config.max_sessions:
            oldest = next(iter(self._sessions))
            if oldest == self._default_fingerprint:
                self._sessions.move_to_end(oldest, last=True)
                oldest = next(iter(self._sessions))
            # Eviction must release runtime resources (persistent pool,
            # shared segment refcount), not just drop the reference.
            self._sessions.pop(oldest).close()
            self.metrics.count("server_sessions_evicted")
        return session

    # -- routing -------------------------------------------------------------

    async def handle(self, request: HTTPRequest,
                     writer: asyncio.StreamWriter,
                     admitted: bool = True) -> None:
        """Dispatch one parsed request and write its full response.

        ``admitted`` is whether the connection was accepted before a
        drain began: pre-drain connections get to finish their one
        request whole (the drain contract), post-drain ones are
        refused with 503.
        """
        self.metrics.count("http_requests")
        if request.path == "/healthz":
            await self._handle_healthz(request, writer)
        elif request.path == "/metrics":
            await self._handle_metrics(request, writer)
        elif request.path == "/v1/disambiguate":
            await self._handle_disambiguate(request, writer, admitted)
        else:
            await self._write_envelope(
                writer, 404, self._routing_outcome(
                    request, f"no such endpoint: {request.path}",
                ),
            )

    async def _require_method(self, request: HTTPRequest,
                              writer: asyncio.StreamWriter,
                              method: str) -> bool:
        if request.method == method:
            return True
        await self._write_envelope(
            writer, 405, self._routing_outcome(
                request, f"{request.path} only accepts {method}",
            ),
            extra_headers=[("Allow", method)],
        )
        return False

    def _routing_outcome(self, request: HTTPRequest,
                         message: str) -> DocOutcome:
        return DocOutcome(
            name=request.path,
            status=STATUS_FAILED,
            stage="routing",
            error_type="RoutingError",
            error=message,
        )

    # -- operational endpoints -----------------------------------------------

    async def _handle_healthz(self, request: HTTPRequest,
                              writer: asyncio.StreamWriter) -> None:
        if not await self._require_method(request, writer, "GET"):
            return
        if self._network_fingerprint is None:
            # Hashing a 100k-concept network takes real time; the
            # network is frozen once served, so hash it once.
            self._network_fingerprint = self.network.fingerprint()
        if self._draining:
            status_word = "draining"
        elif self._degraded:
            # Serving continues on the fallback backing, but the fast
            # path is gone — operators should see it without digging.
            status_word = "degraded"
        else:
            status_word = "ok"
        payload = {
            "status": status_word,
            "ready": self.ready,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "version": __version__,
            "index": {
                "fingerprint": self._network_fingerprint,
                "kind": "packed" if self.server_config.packed else "dict",
                "concepts": len(self.network),
                # "mmap" proves the zero-copy shard attach is live,
                # "shm" a pool segment, "heap" an in-process build.
                "backing": (
                    getattr(self._index, "backing", "heap")
                    if self._index is not None else None
                ),
            },
            "config_fingerprint": self._default_fingerprint,
            "inflight": self._inflight,
            "sessions": len(self._sessions),
            "rate_limiter": self.limiter.stats(),
        }
        if self._registry is not None:
            payload["registry"] = {
                "default": self._registry.default_domain,
                "domains": list(self._registry.domains()),
                **self._registry.stats(),
            }
        payload["durability"] = self.durability_stats()
        status = 200 if self.ready and not self._draining else 503
        await write_json_response(writer, status, payload)
        self.metrics.count(f"http_{status}")

    async def _handle_metrics(self, request: HTTPRequest,
                              writer: asyncio.StreamWriter) -> None:
        if not await self._require_method(request, writer, "GET"):
            return
        # Same schema as `repro batch --metrics-json`: one consumer-side
        # parser serves both the CLI artifact and the live endpoint.
        await write_json_response(writer, 200, self.metrics.snapshot())
        self.metrics.count("http_200")

    # -- disambiguation ------------------------------------------------------

    async def _handle_disambiguate(self, request: HTTPRequest,
                                   writer: asyncio.StreamWriter,
                                   admitted: bool = True) -> None:
        if not await self._require_method(request, writer, "POST"):
            return
        if self._draining and not admitted:
            self.metrics.count("admission_rejected")
            await self._write_envelope(
                writer, 503, self._admission_outcome(
                    "Draining", "server is draining; not accepting work"
                ),
                extra_headers=[("Retry-After", "1")],
            )
            return
        wait = self.limiter.admit(request.client)
        if wait > 0:
            self.metrics.count("rate_limited")
            await self._write_envelope(
                writer, 429, self._admission_outcome(
                    "RateLimited",
                    f"client {request.client or 'unknown'} is over its "
                    f"{self.limiter.rate}/s budget",
                ),
                extra_headers=[("Retry-After", str(math.ceil(wait)))],
            )
            return
        if self._inflight >= self.server_config.max_concurrency:
            self.metrics.count("admission_rejected")
            await self._write_envelope(
                writer, 503, self._admission_outcome(
                    "Overloaded",
                    f"admission queue is full "
                    f"({self.server_config.max_concurrency} in flight)",
                ),
                extra_headers=[("Retry-After", "1")],
            )
            return
        try:
            envelope = parse_disambiguation_request(request)
            config = apply_overrides(
                self.config, envelope.overrides, name=envelope.name
            )
            if envelope.domain is not None:
                if self._registry is None:
                    raise EnvelopeError(
                        400, "envelope",
                        "this server has no network registry; "
                        "'domain' is unavailable",
                        name=envelope.name,
                    )
                if envelope.domain not in self._registry.domains():
                    raise EnvelopeError(
                        404, "envelope",
                        f"unknown domain {envelope.domain!r} (registry "
                        f"defines "
                        f"{', '.join(self._registry.domains())})",
                        error_type="UnknownDomain",
                        name=envelope.name,
                    )
        except EnvelopeError as exc:
            self.metrics.count("envelope_rejected")
            await self._write_envelope(writer, exc.status, exc.outcome)
            return
        session = self.session_for(config, domain=envelope.domain)
        self._inflight += 1
        try:
            record = await self._score(session, envelope.name, envelope.xml)
        except (asyncio.TimeoutError, TimeoutError):
            self.metrics.count("request_timeouts")
            self.metrics.event(
                "request_timeout", doc=envelope.name,
                timeout_s=self.server_config.request_timeout,
            )
            await self._stream_envelope_only(
                writer, 504, DocOutcome(
                    name=envelope.name,
                    status=STATUS_FAILED,
                    stage="timeout",
                    error_type="TimeoutError",
                    error=(
                        "TimeoutError: exceeded request_timeout="
                        f"{self.server_config.request_timeout}s"
                    ),
                ),
            )
            return
        finally:
            self._inflight -= 1
        await self._stream_record(writer, record)

    async def _score(self, session: BatchExecutor, name: str,
                     xml: str) -> BatchRecord:
        """Run one document on the scoring thread (optionally bounded)."""
        assert self._scoring_pool is not None, "warm_up() was not called"
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._scoring_pool, run_one_document, session, name, xml
        )
        timeout = self.server_config.request_timeout
        if timeout is None:
            return await future
        return await asyncio.wait_for(future, timeout)

    async def _stream_record(self, writer: asyncio.StreamWriter,
                             record: BatchRecord) -> None:
        """The NDJSON success/failure stream for one scored document.

        Lines, in order: one ``{"annotation": ..., "doc": ..., "seq":
        ...}`` per resolved node (none for failures), then the record
        line **exactly as `repro batch` would write it** (byte
        identity), then the ``DocOutcome`` envelope line.
        """
        status = 200 if record.ok else 422
        stream = ChunkedNDJSONWriter(writer)
        await stream.start(status)
        if record.result is not None:
            for seq, annotation in enumerate(record.result["assignments"]):
                await stream.write_line({
                    "annotation": annotation,
                    "doc": record.name,
                    "seq": seq,
                })
        await stream.write_raw_line(record.to_json_line().encode("utf-8"))
        outcome = record.outcome or DocOutcome(name=record.name)
        await stream.write_line(envelope_payload(outcome))
        await stream.finish()
        self.metrics.count(f"http_{status}")
        self.metrics.count("documents_served")

    async def _stream_envelope_only(self, writer: asyncio.StreamWriter,
                                    status: int,
                                    outcome: DocOutcome) -> None:
        """An NDJSON response holding only the error envelope line."""
        stream = ChunkedNDJSONWriter(writer)
        await stream.start(status)
        await stream.write_line(envelope_payload(outcome))
        await stream.finish()
        self.metrics.count(f"http_{status}")

    def _admission_outcome(self, error_type: str,
                           message: str) -> DocOutcome:
        return DocOutcome(
            name="request",
            status=STATUS_FAILED,
            stage="admission",
            error_type=error_type,
            error=message,
        )

    async def _write_envelope(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        outcome: DocOutcome,
        extra_headers: list[tuple[str, str]] | None = None,
    ) -> None:
        """One fixed-length JSON error-envelope response."""
        await write_json_response(
            writer, status, envelope_payload(outcome),
            extra_headers=extra_headers,
        )
        self.metrics.count(f"http_{status}")
