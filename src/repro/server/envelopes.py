"""Request/response envelopes for the disambiguation service.

**Request envelope.**  ``POST /v1/disambiguate`` accepts two body
shapes:

* the raw XML document (any non-JSON ``Content-Type``), named
  ``request`` unless an ``X-Repro-Name`` header is present;
* a JSON envelope ``{"name": ..., "xml": ..., "config": {...},
  "domain": ...}`` whose ``config`` object may override per-request
  pipeline knobs (``radius``, ``approach``, ``threshold``, ``weights``,
  ``strip_target_dimension``, ``structure_only``, ``prune``, ``memo``)
  — the same knobs ``repro batch`` exposes as flags, with the same
  defaults, so a server answer is always reproducible by a batch run.
  The optional ``domain`` string selects a network from the server's
  :class:`~repro.runtime.store.NetworkRegistry` (the raw-XML shape
  carries it in the ``X-Repro-Domain`` header); servers without a
  registry reject it.

**Response envelope.**  Every disambiguation response ends with a
``DocOutcome``-shaped envelope line (``{"envelope": {...}}``): the PR-5
resilience statuses (``ok`` / ``degraded`` / ``failed``), the typed
error, the stage that failed, and the attempt count — the service
equivalent of the batch pipeline's per-document outcomes, replacing
process exit codes.  Pre-pipeline rejections (bad envelope, over-limit
body, rate limit, admission) reuse the same shape with synthetic
stages (``envelope``, ``protocol``, ``admission``) so a client parses
exactly one error schema.
"""

from __future__ import annotations

import dataclasses
import json

from ..core.config import DisambiguationApproach, XSDFConfig
from ..runtime.resilience import STATUS_FAILED, DocOutcome
from ..similarity.combined import SimilarityWeights
from .protocol import HTTPRequest

#: ``config.approach`` override values, mirroring the CLI choices.
APPROACHES = {
    "concept": DisambiguationApproach.CONCEPT_BASED,
    "context": DisambiguationApproach.CONTEXT_BASED,
    "combined": DisambiguationApproach.COMBINED,
}

#: Envelope ``config`` keys a request may override.
OVERRIDE_KEYS = frozenset({
    "radius", "approach", "threshold", "weights",
    "strip_target_dimension", "structure_only", "prune", "memo",
})

#: Document name used when the request does not carry one.
DEFAULT_NAME = "request"


class EnvelopeError(Exception):
    """A request that fails before the pipeline, as a typed envelope."""

    def __init__(self, status: int, stage: str, message: str,
                 error_type: str = "EnvelopeError", name: str = DEFAULT_NAME):
        super().__init__(message)
        self.status = status
        self.outcome = DocOutcome(
            name=name,
            status=STATUS_FAILED,
            stage=stage,
            error_type=error_type,
            error=message,
        )

    def payload(self) -> dict:
        """The JSON body answering this rejection."""
        return envelope_payload(self.outcome)


@dataclasses.dataclass(frozen=True)
class DisambiguationRequest:
    """One parsed ``POST /v1/disambiguate`` payload."""

    name: str
    xml: str
    overrides: dict
    domain: "str | None" = None


def envelope_payload(outcome: DocOutcome) -> dict:
    """The ``{"envelope": ...}`` rendering of a structured outcome."""
    return {"envelope": outcome.to_dict()}


def envelope_line(outcome: DocOutcome) -> bytes:
    """The canonical NDJSON envelope line (no trailing newline)."""
    return json.dumps(envelope_payload(outcome), sort_keys=True).encode(
        "utf-8"
    )


def parse_disambiguation_request(request: HTTPRequest) -> DisambiguationRequest:
    """Decode a disambiguation request body into name/xml/overrides.

    Raises :class:`EnvelopeError` (status 400) for undecodable bodies,
    malformed JSON envelopes, missing ``xml``, or unknown override keys
    — parse errors *inside* the XML itself are the pipeline's job and
    come back as a ``failed`` outcome with ``stage="parse"``.
    """
    content_type = request.header("content-type").lower()
    if "json" in content_type:
        try:
            document = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise EnvelopeError(
                400, "envelope", f"malformed JSON envelope: {exc}"
            )
        if not isinstance(document, dict):
            raise EnvelopeError(
                400, "envelope",
                f"JSON envelope must be an object, got {type(document).__name__}",
            )
        xml = document.get("xml")
        if not isinstance(xml, str):
            raise EnvelopeError(
                400, "envelope", "JSON envelope is missing the 'xml' string"
            )
        name = document.get("name", DEFAULT_NAME)
        if not isinstance(name, str) or not name:
            raise EnvelopeError(
                400, "envelope", "'name' must be a non-empty string"
            )
        overrides = document.get("config", {})
        if not isinstance(overrides, dict):
            raise EnvelopeError(
                400, "envelope", "'config' must be an object", name=name
            )
        unknown = sorted(set(overrides) - OVERRIDE_KEYS)
        if unknown:
            raise EnvelopeError(
                400, "envelope",
                f"unknown config override(s): {', '.join(unknown)} "
                f"(valid: {', '.join(sorted(OVERRIDE_KEYS))})",
                name=name,
            )
        domain = document.get("domain")
        if domain is not None and (
            not isinstance(domain, str) or not domain
        ):
            raise EnvelopeError(
                400, "envelope", "'domain' must be a non-empty string",
                name=name,
            )
        return DisambiguationRequest(
            name=name, xml=xml, overrides=overrides, domain=domain
        )
    try:
        xml = request.body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise EnvelopeError(
            400, "envelope", f"request body is not valid UTF-8: {exc}"
        )
    name = request.header("x-repro-name", DEFAULT_NAME) or DEFAULT_NAME
    domain = request.header("x-repro-domain", "") or None
    return DisambiguationRequest(
        name=name, xml=xml, overrides={}, domain=domain
    )


def apply_overrides(base: XSDFConfig, overrides: dict,
                    name: str = DEFAULT_NAME) -> XSDFConfig:
    """The per-request config: ``base`` with the envelope's overrides.

    Values are validated the way the CLI validates its flags; a bad
    value raises :class:`EnvelopeError` (status 400) instead of letting
    a typo silently run the default configuration.
    """
    if not overrides:
        return base
    changes: dict = {}
    for key, value in overrides.items():
        if key == "radius":
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                raise _bad_override(name, "radius", value, "a non-negative int")
            changes["sphere_radius"] = value
        elif key == "approach":
            if value not in APPROACHES:
                raise _bad_override(
                    name, "approach", value,
                    f"one of {', '.join(sorted(APPROACHES))}",
                )
            changes["approach"] = APPROACHES[value]
        elif key == "threshold":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise _bad_override(name, "threshold", value, "a number")
            changes["ambiguity_threshold"] = float(value)
        elif key == "weights":
            if (
                not isinstance(value, (list, tuple)) or len(value) != 3
                or any(
                    isinstance(v, bool) or not isinstance(v, (int, float))
                    for v in value
                )
            ):
                raise _bad_override(
                    name, "weights", value, "[edge, node, gloss] numbers"
                )
            changes["similarity_weights"] = SimilarityWeights(
                float(value[0]), float(value[1]), float(value[2])
            )
        elif key == "strip_target_dimension":
            changes["strip_target_dimension"] = _require_bool(
                name, key, value
            )
        elif key == "structure_only":
            changes["include_values"] = not _require_bool(name, key, value)
        elif key == "prune":
            changes["prune"] = _require_bool(name, key, value)
        elif key == "memo":
            changes["memo"] = _require_bool(name, key, value)
    try:
        return dataclasses.replace(base, **changes)
    except ValueError as exc:
        # XSDFConfig's own __post_init__ validation (radius bounds,
        # weight sums, ...) speaks the same envelope as a typo would.
        raise EnvelopeError(
            400, "envelope", f"invalid config override: {exc}", name=name
        )


def _require_bool(name: str, key: str, value: object) -> bool:
    if not isinstance(value, bool):
        raise _bad_override(name, key, value, "a boolean")
    return value


def _bad_override(name: str, key: str, value: object,
                  expected: str) -> EnvelopeError:
    return EnvelopeError(
        400, "envelope",
        f"config override {key!r} expects {expected}, got {value!r}",
        name=name,
    )
