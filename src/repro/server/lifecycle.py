"""Daemon lifecycle: listener, connection handling, graceful drain.

:class:`ReproServer` owns the asyncio listener around a
:class:`~repro.server.app.ServerApp` and implements the drain contract
the batch pipeline cannot have (a one-shot process just exits):

1. ``SIGTERM`` / ``SIGINT`` request a drain (second signal: immediate).
2. The listening socket closes — **new connections are refused at the
   TCP level** from this instant.
3. Every in-flight connection runs to completion (its response is
   written whole), bounded by ``drain_timeout``; stragglers past the
   bound are cancelled, never silently — each cancellation is a
   metrics event.
4. Metrics are flushed (``--metrics-json``) and the process exits 0.

The server answers one request per connection (``Connection: close``),
so "drain the connection set" and "drain the request set" are the same
waiting game — no keep-alive bookkeeping can leak a request.

Usable both as the CLI blocking entry (:meth:`serve`) and
programmatically from an existing event loop (:meth:`start` /
:meth:`request_drain` / :meth:`run_until_drained`), which is how the
test battery drives it in-process against real sockets.
"""

from __future__ import annotations

import asyncio
import signal
import sys

from .app import ServerApp
from .envelopes import envelope_payload
from .protocol import ProtocolError, read_request, write_json_response
from ..runtime.resilience import STATUS_FAILED, DocOutcome


class ReproServer:
    """The long-lived daemon wrapping one :class:`ServerApp`."""

    def __init__(self, app: ServerApp):
        self.app = app
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._drain_requested: asyncio.Event | None = None
        self._drain_signals = 0
        self._watch_task: asyncio.Task | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` requests)."""
        assert self._server is not None, "server is not started"
        return self._server.sockets[0].getsockname()[:2]

    # -- startup -------------------------------------------------------------

    async def start(self) -> None:
        """Warm the app (index + default session) and open the listener.

        Also starts app supervision (the shard scrubber + reload watch
        state) and, when ``reload_interval > 0``, a polling task that
        hot-reloads the app whenever a watched manifest/shard changes
        on disk.
        """
        self._drain_requested = asyncio.Event()
        self.app.warm_up()
        loop = asyncio.get_running_loop()
        self.app.start_supervision(loop)
        interval = self.app.server_config.reload_interval
        if interval > 0:
            self._watch_task = asyncio.ensure_future(self._watch_loop(interval))
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.app.server_config.host,
            self.app.server_config.port,
        )

    async def _watch_loop(self, interval: float) -> None:
        """Poll the watched files and hot-reload on change."""
        while True:
            await asyncio.sleep(interval)
            self.app.maybe_reload()

    def request_drain(self) -> None:
        """Ask for a graceful drain (idempotent; callable from signals)."""
        self._drain_signals += 1
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def run_until_drained(self) -> None:
        """Serve until a drain is requested, then drain and close."""
        assert self._drain_requested is not None, "start() was not called"
        await self._drain_requested.wait()
        await self.drain()

    async def drain(self) -> None:
        """Stop accepting, finish in-flight work, flush, and close."""
        self.app.begin_drain()
        if self._watch_task is not None:
            self._watch_task.cancel()
            await asyncio.gather(self._watch_task, return_exceptions=True)
            self._watch_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = {task for task in self._connections if not task.done()}
        if pending:
            _, stragglers = await asyncio.wait(
                pending, timeout=self.app.server_config.drain_timeout or None
            )
            for task in stragglers:
                self.app.metrics.count("drain_cancelled")
                self.app.metrics.event(
                    "drain_cancelled", connection=task.get_name()
                )
                task.cancel()
            if stragglers:
                await asyncio.gather(*stragglers, return_exceptions=True)
        self.app.close()

    # -- blocking CLI entry --------------------------------------------------

    def serve(self, announce=None) -> int:
        """Run the daemon until drained; returns the process exit code.

        ``announce(host, port)`` is called once the listener is bound —
        the CLI prints the address there (``--port 0`` binds an
        ephemeral port, so the caller must be told which).
        """
        return asyncio.run(self._serve(announce))

    async def _serve(self, announce) -> int:
        await self.start()
        loop = asyncio.get_running_loop()
        installed = []
        try:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self._on_signal)
                installed.append(signum)
            sighup = getattr(signal, "SIGHUP", None)
            if sighup is not None:
                # The operator's hot-reload trigger: re-read the
                # registry manifest / shard without dropping a request.
                loop.add_signal_handler(sighup, self.app.reload)
                installed.append(sighup)
        except NotImplementedError:  # lint: disable=handler-envelope  # pragma: no cover - non-POSIX loops
            pass
        try:
            if announce is not None:
                host, port = self.address
                announce(host, port)
            await self.run_until_drained()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
        return 0

    def _on_signal(self) -> None:
        """First signal drains gracefully; a second aborts the wait."""
        self.request_drain()
        if self._drain_signals >= 2:  # pragma: no cover - operator escape
            for task in self._connections:
                task.cancel()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """One connection = one request = one response, then close."""
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        # A connection accepted before the drain began is entitled to
        # finish its one request whole, even if the drain starts while
        # its body is still arriving.
        admitted = not self.app.draining
        try:
            await self._serve_one(reader, writer, admitted)
        finally:
            try:
                if writer.can_write_eof():
                    writer.write_eof()
            except OSError:  # lint: disable=handler-envelope  # teardown: peer already gone, nothing to answer
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):  # lint: disable=handler-envelope  # teardown: close racing a dead peer
                pass

    async def _serve_one(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter,
                         admitted: bool = True) -> None:
        peername = writer.get_extra_info("peername")
        client = peername[0] if peername else ""
        try:
            request = await read_request(
                reader,
                max_body_bytes=self.app.server_config.max_body_bytes,
                client=client,
            )
            if request is None:
                return
            await self.app.handle(request, writer, admitted)
        except ProtocolError as exc:
            await self._write_protocol_envelope(writer, exc)
        except ConnectionError:  # lint: disable=handler-envelope  # peer vanished: no socket left to answer on
            # The peer vanished mid-response; there is no socket left to
            # send an envelope on, only an audit trail to keep.
            self.app.metrics.count("connection_aborted")
        except Exception as exc:  # lint: disable=broad-except  # connection isolation boundary -> 500 envelope
            self.app.metrics.count("http_500")
            self.app.metrics.event(
                "handler_error", error_type=type(exc).__name__,
                error=str(exc),
            )
            await self._write_error_envelope(writer, exc)

    async def _write_protocol_envelope(self, writer: asyncio.StreamWriter,
                                       exc: ProtocolError) -> None:
        """Answer a malformed/over-limit request with a typed envelope."""
        self.app.metrics.count(f"http_{exc.status}")
        outcome = DocOutcome(
            name="request",
            status=STATUS_FAILED,
            stage="protocol",
            error_type="ProtocolError",
            error=exc.message,
        )
        try:
            await write_json_response(
                writer, exc.status, envelope_payload(outcome)
            )
        except ConnectionError:  # lint: disable=handler-envelope  # peer gone; the reject is already counted
            pass

    async def _write_error_envelope(self, writer: asyncio.StreamWriter,
                                    exc: Exception) -> None:
        """The last-resort 500: still a typed envelope, never a bare one."""
        outcome = DocOutcome(
            name="request",
            status=STATUS_FAILED,
            stage="handler",
            error_type=type(exc).__name__,
            error=f"{type(exc).__name__}: {exc}",
        )
        try:
            await write_json_response(
                writer, 500, envelope_payload(outcome)
            )
        except ConnectionError:  # lint: disable=handler-envelope  # peer gone; the failure is already in the event log
            pass


def announce_to_stderr(host: str, port: int) -> None:
    """The CLI's default announce hook (parseable by the smoke client)."""
    sys.stderr.write(f"repro-serve listening on {host}:{port}\n")
    sys.stderr.flush()
