"""A minimal, from-scratch HTTP/1.1 wire layer over asyncio streams.

The disambiguation service speaks a deliberately small slice of
HTTP/1.1 — exactly what ``curl``, stdlib ``http.client``, and load
balancers need, and nothing the repo's no-dependency ethos would have
to import a framework for:

* request line + headers + ``Content-Length`` bodies (chunked *request*
  bodies are refused with ``501``; responses may be chunked);
* bounded everything: request-line/header bytes (``431``), body bytes
  (``413``) — limits are enforced *before* the payload is buffered;
* fixed-length JSON responses and chunked NDJSON streaming responses,
  one NDJSON line per chunk so clients can act on annotations as they
  arrive;
* one request per connection (``Connection: close``), which keeps the
  graceful-drain story exact: draining the connection set drains the
  request set.

Parsing failures raise :class:`ProtocolError` carrying the HTTP status
to answer with — the connection handler turns them into typed error
envelopes (see :mod:`repro.server.envelopes`), never bare 500s.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

#: Upper bound on the request line + headers block, in bytes.
DEFAULT_MAX_HEADER_BYTES = 16 * 1024

#: Upper bound on a request body, in bytes (overridable per server).
DEFAULT_MAX_BODY_BYTES = 1024 * 1024

#: Reason phrases for every status the server emits.
STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

NDJSON_CONTENT_TYPE = "application/x-ndjson"
JSON_CONTENT_TYPE = "application/json"


class ProtocolError(Exception):
    """A malformed or over-limit request, with the HTTP status to send."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HTTPRequest:
    """One parsed request: method, path, lowercase headers, raw body."""

    method: str
    path: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    client: str = ""

    def header(self, name: str, default: str = "") -> str:
        """A header value by case-insensitive name."""
        return self.headers.get(name.lower(), default)


async def read_request(
    reader: asyncio.StreamReader,
    max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    client: str = "",
) -> HTTPRequest | None:
    """Parse one request off the stream (``None`` on clean EOF).

    Raises :class:`ProtocolError` for anything malformed or over the
    limits; the status it carries is what the connection handler
    answers with before closing.
    """
    try:
        request_line = await reader.readline()
    except (ValueError, ConnectionError) as exc:
        raise ProtocolError(431, f"request line too long: {exc}")
    if not request_line:
        return None
    if len(request_line) > max_header_bytes:
        raise ProtocolError(431, "request line exceeds the header budget")
    try:
        text = request_line.decode("ascii").rstrip("\r\n")
        method, target, version = text.split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError(400, "malformed request line")
    if not version.startswith("HTTP/1."):
        raise ProtocolError(400, f"unsupported protocol version {version!r}")

    headers: dict[str, str] = {}
    consumed = len(request_line)
    while True:
        try:
            line = await reader.readline()
        except (ValueError, ConnectionError) as exc:
            raise ProtocolError(431, f"header line too long: {exc}")
        if not line:
            raise ProtocolError(400, "connection closed inside headers")
        consumed += len(line)
        if consumed > max_header_bytes:
            raise ProtocolError(431, "headers exceed the header budget")
        if line in (b"\r\n", b"\n"):
            break
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise ProtocolError(400, "undecodable header line")
        if not _:
            raise ProtocolError(400, f"header line without ':': {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError(501, "chunked request bodies are not supported")
    body = b""
    length_text = headers.get("content-length", "")
    if length_text:
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(400, f"bad Content-Length {length_text!r}")
        if length < 0:
            raise ProtocolError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise ProtocolError(
                413,
                f"body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "connection closed inside the body")

    # The path may carry a query string; the service routes on the path
    # component only (no endpoint takes query parameters today).
    path = target.split("?", 1)[0] or "/"
    return HTTPRequest(
        method=method.upper(), path=path, version=version,
        headers=headers, body=body, client=client,
    )


def render_headers(
    status: int,
    headers: list[tuple[str, str]],
) -> bytes:
    """The status line + header block (through the blank line) as bytes."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = JSON_CONTENT_TYPE,
    extra_headers: list[tuple[str, str]] | None = None,
) -> None:
    """Write one fixed-length response (and flush it)."""
    headers = [
        ("Content-Type", content_type),
        ("Content-Length", str(len(body))),
        ("Connection", "close"),
    ]
    headers.extend(extra_headers or [])
    writer.write(render_headers(status, headers) + body)
    await writer.drain()


async def write_json_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict,
    extra_headers: list[tuple[str, str]] | None = None,
) -> None:
    """Write one JSON object as a fixed-length response."""
    body = json.dumps(payload, indent=1, sort_keys=True).encode("utf-8")
    await write_response(
        writer, status, body + b"\n",
        content_type=JSON_CONTENT_TYPE, extra_headers=extra_headers,
    )


class ChunkedNDJSONWriter:
    """Streams NDJSON lines as one HTTP chunk per line.

    The chunk-per-line framing is a protocol promise the test battery
    pins: a client that decodes the chunked framing sees exactly one
    complete JSON document per chunk and can process annotations
    incrementally, without buffering the whole response.
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer
        self._started = False
        self._status = 200

    @property
    def started(self) -> bool:
        """Whether the header block has been sent (status is frozen)."""
        return self._started

    async def start(self, status: int = 200) -> None:
        """Send the header block; idempotent once started."""
        if self._started:
            return
        self._status = status
        self._writer.write(render_headers(status, [
            ("Content-Type", NDJSON_CONTENT_TYPE),
            ("Transfer-Encoding", "chunked"),
            ("Connection", "close"),
        ]))
        await self._writer.drain()
        self._started = True

    async def write_line(self, payload: dict) -> None:
        """Serialize one canonical NDJSON line and flush it as a chunk."""
        await self.write_raw_line(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        )

    async def write_raw_line(self, line: bytes) -> None:
        """Flush one pre-serialized line (no trailing newline) as a chunk."""
        if not self._started:
            await self.start()
        data = line + b"\n"
        self._writer.write(
            f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"
        )
        await self._writer.drain()

    async def finish(self) -> None:
        """Send the terminating zero-length chunk."""
        if not self._started:
            await self.start()
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()
