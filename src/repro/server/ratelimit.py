"""Per-client token-bucket rate limiting for the disambiguation service.

Each client (keyed by peer address) owns a :class:`TokenBucket` of
``burst`` capacity refilled at ``rate`` tokens per second; a request
costs one token, and an empty bucket yields the number of seconds until
the next token — which the server surfaces as ``429`` +
``Retry-After``.  The limiter state is bounded: least-recently-seen
clients are evicted once :attr:`RateLimiter.max_clients` distinct peers
have been tracked, so a scan of the address space cannot grow server
memory.

The clock is injected (defaulting to ``time.monotonic``) so the test
battery drives the refill logic deterministically.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable


class TokenBucket:
    """One client's budget: ``burst`` capacity, ``rate`` tokens/second."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: int, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = float(burst)
        self.updated = now

    def acquire(self, now: float) -> float:
        """Spend one token; returns 0.0 if admitted, else seconds to wait.

        The wait is how long until one full token has accrued — the
        ``Retry-After`` a well-behaved client should honor.
        """
        if now > self.updated:
            self.tokens = min(
                float(self.burst), self.tokens + (now - self.updated) * self.rate
            )
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Bounded per-client token buckets; ``rate <= 0`` disables limiting."""

    #: Cap on distinct tracked clients (LRU-evicted beyond this).
    max_clients = 1024

    def __init__(self, rate: float, burst: int,
                 clock: Callable[[], float] = time.monotonic):
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self.admitted = 0
        self.rejected = 0

    @property
    def enabled(self) -> bool:
        """Whether limiting is active (``rate > 0``)."""
        return self.rate > 0

    def admit(self, client: str) -> float:
        """Charge one request to ``client``; 0.0 = admitted, else wait.

        A positive return is the ``Retry-After`` budget in seconds
        (never rounded down to 0 — a throttled client must always be
        told to wait at least something).
        """
        if not self.enabled:
            self.admitted += 1
            return 0.0
        now = self.clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, now)
            self._buckets[client] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        wait = bucket.acquire(now)
        if wait <= 0.0:
            self.admitted += 1
            return 0.0
        self.rejected += 1
        return max(wait, 1e-3)

    def stats(self) -> dict:
        """JSON-ready admitted/rejected/tracked-client counters."""
        return {
            "enabled": self.enabled,
            "rate_per_s": self.rate,
            "burst": self.burst,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "clients": len(self._buckets),
        }
