"""Semantic similarity measures (paper Definition 9 and Section 2.1).

Edge-based (Wu-Palmer, path, Leacock-Chodorow), node-based (Lin, Resnik,
Jiang-Conrath), gloss-based (normalized extended Lesk), their weighted
combination, and sparse-vector measures (cosine, Jaccard, Pearson).
"""

from .combined import CombinedSimilarity, ConceptSimilarity, SimilarityWeights
from .edge import LeacockChodorowSimilarity, PathSimilarity, WuPalmerSimilarity
from .gloss import ExtendedLeskSimilarity
from .node import JiangConrathSimilarity, LinSimilarity, ResnikSimilarity
from .vector import (
    VECTOR_MEASURES,
    cosine_similarity,
    jaccard_similarity,
    pearson_similarity,
)

__all__ = [
    "CombinedSimilarity",
    "ConceptSimilarity",
    "ExtendedLeskSimilarity",
    "JiangConrathSimilarity",
    "LeacockChodorowSimilarity",
    "LinSimilarity",
    "PathSimilarity",
    "ResnikSimilarity",
    "SimilarityWeights",
    "VECTOR_MEASURES",
    "WuPalmerSimilarity",
    "cosine_similarity",
    "jaccard_similarity",
    "pearson_similarity",
]
