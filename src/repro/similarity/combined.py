"""The paper's combined semantic similarity measure (Definition 9).

``Sim(c1, c2, SN-bar) = w_edge * Sim_edge + w_node * Sim_node +
w_gloss * Sim_gloss`` with non-negative weights summing to 1.  The
component measures are the ones the paper names: Wu-Palmer (edge), Lin
(node), and normalized extended Lesk (gloss) — each swappable.

Pair results are memoized: disambiguation evaluates the same concept
pairs repeatedly across context nodes, and caching makes the
concept-based scorer's complexity linear in distinct pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, MutableMapping

from ..semnet.ic import InformationContent
from ..semnet.network import SemanticNetwork
from .edge import WuPalmerSimilarity
from .gloss import ExtendedLeskSimilarity
from .node import LinSimilarity

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from typing import Union

    from ..runtime.index import SemanticIndex
    from ..runtime.pack import PackedIndex

    AnyIndex = Union[SemanticIndex, PackedIndex]

#: A concept-to-concept similarity function.
ConceptSimilarity = Callable[[str, str], float]

#: Anything CombinedSimilarity can memoize pairs into: a plain dict or
#: a dict-compatible store such as :class:`repro.runtime.cache.LRUCache`
#: (only ``get`` / ``__setitem__`` / ``__len__`` are touched).
PairCache = MutableMapping[tuple[str, str], float]


@dataclass(frozen=True)
class SimilarityWeights:
    """The (w_edge, w_node, w_gloss) mix, normalized to sum to 1.

    The paper's experiments use the uniform mix (1/3 each); ablations
    sweep the simplex corners.
    """

    edge: float = 1.0 / 3.0
    node: float = 1.0 / 3.0
    gloss: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        if min(self.edge, self.node, self.gloss) < 0:
            raise ValueError("similarity weights must be non-negative")
        total = self.edge + self.node + self.gloss
        if total <= 0:
            raise ValueError("at least one similarity weight must be positive")
        object.__setattr__(self, "edge", self.edge / total)
        object.__setattr__(self, "node", self.node / total)
        object.__setattr__(self, "gloss", self.gloss / total)


class CombinedSimilarity:
    """Weighted combination of edge-, node-, and gloss-based measures.

    ``index`` (a :class:`repro.runtime.index.SemanticIndex` or
    :class:`repro.runtime.pack.PackedIndex`) routes the default
    component measures through precomputed taxonomy/gloss tables — the
    packed form through interned flat-array kernels — with scores
    bit-identical either way.  ``cache``
    replaces the private unbounded pair memo with an external store
    (e.g. :class:`repro.runtime.cache.LRUCache` for bounded memory and
    hit/miss observability); any mapping with ``get``/``__setitem__``/
    ``__len__`` works.
    """

    def __init__(
        self,
        network: SemanticNetwork,
        weights: SimilarityWeights | None = None,
        ic: InformationContent | None = None,
        edge_measure: ConceptSimilarity | None = None,
        node_measure: ConceptSimilarity | None = None,
        gloss_measure: ConceptSimilarity | None = None,
        index: "AnyIndex | None" = None,
        cache: PairCache | None = None,
    ):
        self.weights = weights or SimilarityWeights()
        self._edge = edge_measure or WuPalmerSimilarity(network, index=index)
        # The node measure needs the weighted network; build IC once and
        # share it when the caller did not supply a measure.
        if node_measure is not None:
            self._node = node_measure
        else:
            self._node = LinSimilarity(network, ic=ic, index=index)
        self._gloss = gloss_measure or ExtendedLeskSimilarity(
            network, index=index
        )
        self._cache: PairCache = cache if cache is not None else {}
        # Duck-typed: measures exposing upper_bound() enable the cheap
        # gloss bound; others fall back to the trivial bound 1.0.
        self._gloss_upper = getattr(self._gloss, "upper_bound", None)
        self._bound_cache: dict[tuple[str, str], float] = {}

    def __call__(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        key = (a, b) if a <= b else (b, a)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        w = self.weights
        score = 0.0
        if w.edge:
            score += w.edge * self._edge(a, b)
        if w.node:
            score += w.node * self._node(a, b)
        if w.gloss:
            score += w.gloss * self._gloss(a, b)
        score = max(0.0, min(1.0, score))
        self._cache[key] = score
        return score

    def upper_bound(self, a: str, b: str) -> float:
        """An exact float upper bound on ``self(a, b)``, cheaply.

        The edge and node components are computed exactly (both reduce
        to the memoized LCS lookup); only the gloss component — the
        expensive overlap DP — is replaced by its multiset bound (or by
        the trivial bound 1.0 when the gloss measure exposes none).
        The accumulation mirrors :meth:`__call__` term for term, so by
        monotonicity of IEEE rounding the result dominates the true
        score in *float* arithmetic — the property exact candidate
        pruning (:mod:`repro.core`) relies on.
        """
        if a == b:
            return 1.0
        key = (a, b) if a <= b else (b, a)
        cached = self._bound_cache.get(key)
        if cached is not None:
            return cached
        w = self.weights
        score = 0.0
        if w.edge:
            score += w.edge * self._edge(a, b)
        if w.node:
            score += w.node * self._node(a, b)
        if w.gloss:
            if self._gloss_upper is not None:
                score += w.gloss * self._gloss_upper(a, b)
            else:
                score += w.gloss * 1.0
        score = max(0.0, min(1.0, score))
        self._bound_cache[key] = score
        return score

    def cache_size(self) -> int:
        """Number of memoized concept pairs (for benchmarks/tests)."""
        return len(self._cache)
