"""Edge-based semantic similarity measures.

These estimate similarity from the shortest IS-A path between concepts:

* :class:`WuPalmerSimilarity` — the measure the paper plugs in as
  ``Sim_Edge`` (Wu & Palmer, ACL 1994): path positions relative to the
  lowest common subsumer, ``2*d(lcs) / (d(a) + d(b))`` with depths
  counted from the taxonomy root.
* :class:`PathSimilarity` — the classic ``1 / (1 + path_length)``.
* :class:`LeacockChodorowSimilarity` — ``-log(len / 2D)`` normalized to
  [0, 1] by the network's maximum value.

All measures return values in [0, 1] and 0.0 when the concepts share no
IS-A ancestor (disconnected taxonomies).

Each accepts an optional precomputed
:class:`repro.runtime.index.SemanticIndex` (``index=``): the fast path
serves closures, depths, and LCS lookups from the index's tables
instead of walking the network, with bit-identical results (the index
stores the very closure dicts and tie-break the network produces).
Passing a :class:`repro.runtime.pack.PackedIndex` (detected via its
``is_packed`` marker) routes through the interned flat-array pair
kernel instead — one memoized ``pair_terms`` lookup yields the LCS
slot, its depth, and both distances, still bit-identical.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Union

from ..semnet.network import SemanticNetwork

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..runtime.index import SemanticIndex
    from ..runtime.pack import PackedIndex

    AnyIndex = Union[SemanticIndex, PackedIndex]


class WuPalmerSimilarity:
    """Wu-Palmer conceptual similarity over a semantic network."""

    def __init__(self, network: SemanticNetwork,
                 index: "AnyIndex | None" = None):
        self._network = network
        self._index = index
        self._packed = index if getattr(index, "is_packed", False) else None

    def __call__(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        packed = self._packed
        if packed is not None:
            terms = packed.pair_terms(a, b)
            if terms is None:
                return 0.0
            depth_lcs = terms[1]
            depth_a = depth_lcs + terms[2]
            depth_b = depth_lcs + terms[3]
        elif self._index is not None:
            index = self._index
            lcs = index.lowest_common_subsumer(a, b)
            if lcs is None:
                return 0.0
            depth_lcs = index.depth(lcs)
            depth_a = depth_lcs + index.hypernym_closure(a)[lcs]
            depth_b = depth_lcs + index.hypernym_closure(b)[lcs]
        else:
            network = self._network
            lcs = network.lowest_common_subsumer(a, b)
            if lcs is None:
                return 0.0
            depth_lcs = network.depth(lcs)
            # Depths of a and b measured through the LCS, as Wu-Palmer
            # defines.
            depth_a = depth_lcs + network.hypernym_closure(a)[lcs]
            depth_b = depth_lcs + network.hypernym_closure(b)[lcs]
        if depth_a + depth_b == 0:
            return 1.0
        return 2.0 * depth_lcs / (depth_a + depth_b)


class PathSimilarity:
    """Inverse shortest-IS-A-path similarity: ``1 / (1 + distance)``."""

    def __init__(self, network: SemanticNetwork,
                 index: "AnyIndex | None" = None):
        self._network = network
        self._index = index
        self._packed = index if getattr(index, "is_packed", False) else None

    def __call__(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        packed = self._packed
        if packed is not None:
            terms = packed.pair_terms(a, b)
            distance = None if terms is None else terms[2] + terms[3]
        elif self._index is not None:
            distance = self._index.taxonomic_distance(a, b)
        else:
            distance = self._network.taxonomic_distance(a, b)
        if distance is None:
            return 0.0
        return 1.0 / (1.0 + distance)


class LeacockChodorowSimilarity:
    """Leacock-Chodorow similarity, normalized into [0, 1].

    Raw LC is ``-log((dist + 1) / (2 * D))`` with ``D`` the taxonomy
    depth; dividing by the maximum attainable value ``-log(1 / (2D))``
    yields a unit-interval measure comparable with the others.
    """

    def __init__(self, network: SemanticNetwork,
                 index: "AnyIndex | None" = None):
        self._network = network
        self._index = index
        self._packed = index if getattr(index, "is_packed", False) else None
        depth = max(
            1,
            index.max_taxonomy_depth
            if index is not None
            else network.max_taxonomy_depth,
        )
        self._scale = math.log(2.0 * depth)

    def __call__(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        packed = self._packed
        if packed is not None:
            terms = packed.pair_terms(a, b)
            distance = None if terms is None else terms[2] + terms[3]
        elif self._index is not None:
            distance = self._index.taxonomic_distance(a, b)
        else:
            distance = self._network.taxonomic_distance(a, b)
        if distance is None:
            return 0.0
        raw = -math.log((distance + 1.0) / math.exp(self._scale))
        return max(0.0, min(1.0, raw / self._scale))
