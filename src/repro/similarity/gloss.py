"""Gloss-based semantic similarity (normalized extended Lesk).

The paper's ``Sim_Gloss`` is "a normalized extension of a typical
gloss-based measure from [Banerjee & Pedersen 2003]": concepts are
similar when their glosses — extended with the glosses of their direct
semantic neighbors — share words.  Overlaps of consecutive words count
quadratically in the original; we score each maximal shared n-gram as
``n^2`` and normalize by the maximum possible overlap of the two
extended glosses, yielding a [0, 1] measure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from ..semnet.network import SemanticNetwork

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..runtime.index import SemanticIndex
    from ..runtime.pack import PackedIndex

    AnyIndex = Union[SemanticIndex, PackedIndex]


def _ngram_overlap_score(tokens_a: list[str], tokens_b: list[str]) -> float:
    """Sum of squared lengths of maximal common phrases (greedy Lesk).

    Repeatedly find the longest common contiguous token sequence, score
    it ``len**2``, remove it from both sides, and repeat — the procedure
    from Banerjee & Pedersen's extended Lesk.
    """
    a = list(tokens_a)
    b = list(tokens_b)
    score = 0.0
    while True:
        best_len = 0
        best_a = best_b = -1
        # Longest common substring over token sequences (DP).
        m, n = len(a), len(b)
        if not m or not n:
            break
        prev = [0] * (n + 1)
        for i in range(1, m + 1):
            row = [0] * (n + 1)
            for j in range(1, n + 1):
                if a[i - 1] == b[j - 1]:
                    row[j] = prev[j - 1] + 1
                    if row[j] > best_len:
                        best_len = row[j]
                        best_a, best_b = i - best_len, j - best_len
            prev = row
        if best_len == 0:
            break
        score += float(best_len * best_len)
        del a[best_a : best_a + best_len]
        del b[best_b : best_b + best_len]
    return score


def extended_gloss_tokens(
    network: SemanticNetwork, concept_id: str, expand: bool = True
) -> list[str]:
    """The (optionally neighbor-extended) gloss token bag of one concept.

    Shared between :class:`ExtendedLeskSimilarity` and the precomputed
    :class:`repro.runtime.index.SemanticIndex` gloss bags, so both paths
    score from identical token sequences.
    """
    from ..linguistics.stemmer import stem

    concept = network.concept(concept_id)
    tokens = concept.gloss_tokens()
    # Synonym words join the extended gloss, stemmed to match the
    # gloss-token conflation (multiword synonyms contribute each part).
    for word in concept.words:
        tokens.extend(stem(part) for part in word.split())
    if expand:
        for neighbor_id in network.neighbors(concept_id):
            tokens.extend(network.concept(neighbor_id).gloss_tokens())
    return tokens


class ExtendedLeskSimilarity:
    """Normalized extended gloss overlap between two concepts.

    Parameters
    ----------
    network:
        The semantic network providing glosses and relations.
    expand:
        When True (default) each concept's gloss is concatenated with the
        glosses of its direct neighbors (hypernyms, hyponyms, meronyms,
        ...), the "extended" part of extended Lesk.
    index:
        Optional :class:`repro.runtime.index.SemanticIndex` whose
        precomputed gloss bags replace the lazy per-instance token cache
        (only consulted when ``expand`` matches the index's bags, i.e.
        ``expand=True``).  Scores are identical either way.  A
        :class:`repro.runtime.pack.PackedIndex` routes the whole
        comparison through its interned-token kernel — the same greedy
        overlap over dense int ids with a disjoint-set quick reject —
        still bit-identical.
    """

    def __init__(
        self,
        network: SemanticNetwork,
        expand: bool = True,
        index: "AnyIndex | None" = None,
    ):
        self._network = network
        self._expand = expand
        self._index = index if (index is not None and expand) else None
        self._packed = (
            self._index
            if getattr(self._index, "is_packed", False)
            else None
        )
        self._token_cache: dict[str, list[str]] = {}
        self._count_cache: dict[str, dict[str, int]] = {}

    def _extended_gloss(self, concept_id: str) -> list[str]:
        if self._index is not None:
            return self._index.gloss_bag(concept_id)
        cached = self._token_cache.get(concept_id)
        if cached is not None:
            return cached
        tokens = extended_gloss_tokens(
            self._network, concept_id, expand=self._expand
        )
        self._token_cache[concept_id] = tokens
        return tokens

    def __call__(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        if self._packed is not None:
            return self._packed.lesk_similarity(a, b)
        tokens_a = self._extended_gloss(a)
        tokens_b = self._extended_gloss(b)
        if not tokens_a or not tokens_b:
            return 0.0
        raw = _ngram_overlap_score(tokens_a, tokens_b)
        # Normalize so a full contiguous match of the shorter gloss maps
        # to 1.0.  Using sqrt(raw)/shorter rather than raw/shorter**2
        # keeps small-but-real overlaps (a few shared words) at a scale
        # comparable with the edge/node measures instead of vanishing
        # quadratically.
        shorter = min(len(tokens_a), len(tokens_b))
        if shorter <= 0:
            return 0.0
        return min(1.0, (raw ** 0.5) / shorter)

    def _token_counts(self, concept_id: str) -> dict[str, int]:
        cached = self._count_cache.get(concept_id)
        if cached is not None:
            return cached
        counts: dict[str, int] = {}
        for token in self._extended_gloss(concept_id):
            counts[token] = counts.get(token, 0) + 1
        self._count_cache[concept_id] = counts
        return counts

    def upper_bound(self, a: str, b: str) -> float:
        """Cheap exact upper bound on ``self(a, b)`` for pruning.

        The greedy overlap only ever matches tokens the two bags share,
        and removes matched runs from both sides, so the removed
        lengths sum to at most the multiset-intersection size ``m``;
        the raw score (a sum of squared run lengths) is then at most
        ``m**2``, and ``min(1, m/shorter)`` dominates the normalized
        score — exactly, in float arithmetic, because ``m**2`` is a
        perfect square and ``sqrt``/division/``min`` are monotone
        (see :meth:`repro.runtime.pack.PackedIndex.lesk_upper_bound`).
        """
        if a == b:
            return 1.0
        if self._packed is not None:
            return self._packed.lesk_upper_bound(a, b)
        counts_a = self._token_counts(a)
        counts_b = self._token_counts(b)
        if not counts_a or not counts_b:
            return 0.0
        shorter = min(
            len(self._extended_gloss(a)), len(self._extended_gloss(b))
        )
        if shorter <= 0:
            return 0.0
        if len(counts_a) > len(counts_b):
            counts_a, counts_b = counts_b, counts_a
        other_get = counts_b.get
        m = 0
        for token, count in counts_a.items():
            other = other_get(token)
            if other is not None:
                m += count if count < other else other
        return min(1.0, m / shorter)
