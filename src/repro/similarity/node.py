"""Node-based (information-content) semantic similarity measures.

These use the statistical distribution of concept occurrences in a text
corpus (the weighted network ``SN-bar``).  The paper plugs Lin's measure
(ICML 1998) in as ``Sim_Node``; Resnik and Jiang-Conrath variants are
provided for ablations.  All are normalized into [0, 1].

Each accepts an optional precomputed
:class:`repro.runtime.index.SemanticIndex` (``index=``): IC values stay
table lookups either way, but the lowest-common-subsumer query — the
taxonomy walk dominating these measures — is served from the index's
memo, with bit-identical results.  A
:class:`repro.runtime.pack.PackedIndex` (detected via ``is_packed``)
routes the LCS through the interned pair kernel instead; an explicit
``ic=`` table is still consulted for the IC values themselves, so
custom-IC semantics are preserved in packed mode too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from ..semnet.ic import InformationContent
from ..semnet.network import SemanticNetwork

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..runtime.index import SemanticIndex
    from ..runtime.pack import PackedIC, PackedIndex

    AnyIC = Union[InformationContent, PackedIC]
    AnyIndex = Union[SemanticIndex, PackedIndex]


def _packed_parts(index: object, ic: object) -> tuple:
    """(packed-index | None, packed-resnik-ok) for one measure.

    ``packed-resnik-ok`` is True when the IC table in use *is* the
    packed index's own view, so the LCS information content may be read
    straight from the packed slot instead of re-interning its id string.
    """
    packed = index if getattr(index, "is_packed", False) else None
    owns_ic = packed is not None and getattr(ic, "_owner", None) is packed
    return packed, owns_ic


class LinSimilarity:
    """Lin similarity ``2*IC(lcs) / (IC(a)+IC(b))`` — already in [0, 1]."""

    def __init__(
        self,
        network: SemanticNetwork,
        ic: "AnyIC | None" = None,
        index: "AnyIndex | None" = None,
    ):
        if ic is None:
            ic = index.ic if index is not None else InformationContent(network)
        self._ic = ic
        self._index = index
        self._packed, self._packed_ic = _packed_parts(index, ic)

    def __call__(self, a: str, b: str) -> float:
        packed = self._packed
        if packed is not None:
            # Same arithmetic, LCS from the interned pair kernel.
            if a == b:
                return 1.0
            ic = self._ic
            denominator = ic.ic(a) + ic.ic(b)
            if denominator <= 0:
                return 0.0
            terms = packed.pair_terms(a, b)
            if terms is None:
                resnik = 0.0
            elif self._packed_ic:
                resnik = packed.ic_of_slot(terms[0])
            else:
                resnik = ic.ic(packed.concept_id(terms[0]))
            return max(0.0, min(1.0, 2.0 * resnik / denominator))
        if self._index is None:
            return self._ic.lin(a, b)
        # Same arithmetic as InformationContent.lin, with the LCS served
        # from the index memo.
        if a == b:
            return 1.0
        denominator = self._ic.ic(a) + self._ic.ic(b)
        if denominator <= 0:
            return 0.0
        lcs = self._index.lowest_common_subsumer(a, b)
        resnik = 0.0 if lcs is None else self._ic.ic(lcs)
        return max(0.0, min(1.0, 2.0 * resnik / denominator))


class ResnikSimilarity:
    """Resnik similarity ``IC(lcs)``, normalized by the network's max IC."""

    def __init__(
        self,
        network: SemanticNetwork,
        ic: "AnyIC | None" = None,
        index: "AnyIndex | None" = None,
    ):
        if ic is None:
            ic = index.ic if index is not None else InformationContent(network)
        self._ic = ic
        self._index = index
        self._packed, self._packed_ic = _packed_parts(index, ic)

    def __call__(self, a: str, b: str) -> float:
        if a == b:
            return min(1.0, self._ic.ic(a) / self._ic.max_ic)
        packed = self._packed
        if packed is not None:
            terms = packed.pair_terms(a, b)
            if terms is None:
                raw = 0.0
            elif self._packed_ic:
                raw = packed.ic_of_slot(terms[0])
            else:
                raw = self._ic.ic(packed.concept_id(terms[0]))
        elif self._index is not None:
            lcs = self._index.lowest_common_subsumer(a, b)
            raw = 0.0 if lcs is None else self._ic.ic(lcs)
        else:
            raw = self._ic.resnik(a, b)
        return min(1.0, raw / self._ic.max_ic)


class JiangConrathSimilarity:
    """Jiang-Conrath distance converted to a [0, 1] similarity.

    ``sim = 1 - dist / (2 * max_ic)`` — the distance is bounded by
    ``2 * max_ic`` so the result stays in the unit interval.
    """

    def __init__(
        self,
        network: SemanticNetwork,
        ic: "AnyIC | None" = None,
        index: "AnyIndex | None" = None,
    ):
        if ic is None:
            ic = index.ic if index is not None else InformationContent(network)
        self._ic = ic
        self._index = index
        self._packed, self._packed_ic = _packed_parts(index, ic)

    def __call__(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        packed = self._packed
        if packed is not None:
            ic = self._ic
            terms = packed.pair_terms(a, b)
            if terms is None:
                resnik = 0.0
            elif self._packed_ic:
                resnik = packed.ic_of_slot(terms[0])
            else:
                resnik = ic.ic(packed.concept_id(terms[0]))
            distance = max(0.0, ic.ic(a) + ic.ic(b) - 2.0 * resnik)
        elif self._index is not None:
            lcs = self._index.lowest_common_subsumer(a, b)
            resnik = 0.0 if lcs is None else self._ic.ic(lcs)
            distance = max(
                0.0, self._ic.ic(a) + self._ic.ic(b) - 2.0 * resnik
            )
        else:
            distance = self._ic.jiang_conrath_distance(a, b)
        bound = 2.0 * self._ic.max_ic
        if bound <= 0:
            return 0.0
        return max(0.0, 1.0 - distance / bound)
