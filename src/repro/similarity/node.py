"""Node-based (information-content) semantic similarity measures.

These use the statistical distribution of concept occurrences in a text
corpus (the weighted network ``SN-bar``).  The paper plugs Lin's measure
(ICML 1998) in as ``Sim_Node``; Resnik and Jiang-Conrath variants are
provided for ablations.  All are normalized into [0, 1].
"""

from __future__ import annotations

from ..semnet.ic import InformationContent
from ..semnet.network import SemanticNetwork


class LinSimilarity:
    """Lin similarity ``2*IC(lcs) / (IC(a)+IC(b))`` — already in [0, 1]."""

    def __init__(self, network: SemanticNetwork, ic: InformationContent | None = None):
        self._ic = ic or InformationContent(network)

    def __call__(self, a: str, b: str) -> float:
        return self._ic.lin(a, b)


class ResnikSimilarity:
    """Resnik similarity ``IC(lcs)``, normalized by the network's max IC."""

    def __init__(self, network: SemanticNetwork, ic: InformationContent | None = None):
        self._ic = ic or InformationContent(network)

    def __call__(self, a: str, b: str) -> float:
        if a == b:
            return min(1.0, self._ic.ic(a) / self._ic.max_ic)
        return min(1.0, self._ic.resnik(a, b) / self._ic.max_ic)


class JiangConrathSimilarity:
    """Jiang-Conrath distance converted to a [0, 1] similarity.

    ``sim = 1 - dist / (2 * max_ic)`` — the distance is bounded by
    ``2 * max_ic`` so the result stays in the unit interval.
    """

    def __init__(self, network: SemanticNetwork, ic: InformationContent | None = None):
        self._ic = ic or InformationContent(network)

    def __call__(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        distance = self._ic.jiang_conrath_distance(a, b)
        bound = 2.0 * self._ic.max_ic
        if bound <= 0:
            return 0.0
        return max(0.0, 1.0 - distance / bound)
