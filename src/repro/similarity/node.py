"""Node-based (information-content) semantic similarity measures.

These use the statistical distribution of concept occurrences in a text
corpus (the weighted network ``SN-bar``).  The paper plugs Lin's measure
(ICML 1998) in as ``Sim_Node``; Resnik and Jiang-Conrath variants are
provided for ablations.  All are normalized into [0, 1].

Each accepts an optional precomputed
:class:`repro.runtime.index.SemanticIndex` (``index=``): IC values stay
table lookups either way, but the lowest-common-subsumer query — the
taxonomy walk dominating these measures — is served from the index's
memo, with bit-identical results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..semnet.ic import InformationContent
from ..semnet.network import SemanticNetwork

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..runtime.index import SemanticIndex


class LinSimilarity:
    """Lin similarity ``2*IC(lcs) / (IC(a)+IC(b))`` — already in [0, 1]."""

    def __init__(
        self,
        network: SemanticNetwork,
        ic: InformationContent | None = None,
        index: SemanticIndex | None = None,
    ):
        if ic is None:
            ic = index.ic if index is not None else InformationContent(network)
        self._ic = ic
        self._index = index

    def __call__(self, a: str, b: str) -> float:
        if self._index is None:
            return self._ic.lin(a, b)
        # Same arithmetic as InformationContent.lin, with the LCS served
        # from the index memo.
        if a == b:
            return 1.0
        denominator = self._ic.ic(a) + self._ic.ic(b)
        if denominator <= 0:
            return 0.0
        lcs = self._index.lowest_common_subsumer(a, b)
        resnik = 0.0 if lcs is None else self._ic.ic(lcs)
        return max(0.0, min(1.0, 2.0 * resnik / denominator))


class ResnikSimilarity:
    """Resnik similarity ``IC(lcs)``, normalized by the network's max IC."""

    def __init__(
        self,
        network: SemanticNetwork,
        ic: InformationContent | None = None,
        index: SemanticIndex | None = None,
    ):
        if ic is None:
            ic = index.ic if index is not None else InformationContent(network)
        self._ic = ic
        self._index = index

    def __call__(self, a: str, b: str) -> float:
        if a == b:
            return min(1.0, self._ic.ic(a) / self._ic.max_ic)
        if self._index is not None:
            lcs = self._index.lowest_common_subsumer(a, b)
            raw = 0.0 if lcs is None else self._ic.ic(lcs)
        else:
            raw = self._ic.resnik(a, b)
        return min(1.0, raw / self._ic.max_ic)


class JiangConrathSimilarity:
    """Jiang-Conrath distance converted to a [0, 1] similarity.

    ``sim = 1 - dist / (2 * max_ic)`` — the distance is bounded by
    ``2 * max_ic`` so the result stays in the unit interval.
    """

    def __init__(
        self,
        network: SemanticNetwork,
        ic: InformationContent | None = None,
        index: SemanticIndex | None = None,
    ):
        if ic is None:
            ic = index.ic if index is not None else InformationContent(network)
        self._ic = ic
        self._index = index

    def __call__(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        if self._index is not None:
            lcs = self._index.lowest_common_subsumer(a, b)
            resnik = 0.0 if lcs is None else self._ic.ic(lcs)
            distance = max(
                0.0, self._ic.ic(a) + self._ic.ic(b) - 2.0 * resnik
            )
        else:
            distance = self._ic.jiang_conrath_distance(a, b)
        bound = 2.0 * self._ic.max_ic
        if bound <= 0:
            return 0.0
        return max(0.0, 1.0 - distance / bound)
