"""Vector similarity measures over sparse label-weight vectors.

Context vectors (paper Definition 6) are sparse mappings from node
labels to weights.  The context-based disambiguation score (Definition
10) compares them with cosine similarity; Jaccard and Pearson variants
are provided because the paper explicitly notes they are drop-in
replacements.
"""

from __future__ import annotations

import math
from typing import Mapping

Vector = Mapping[str, float]


def cosine_similarity(u: Vector, v: Vector) -> float:
    """Cosine of the angle between two sparse vectors, in [0, 1]."""
    if not u or not v:
        return 0.0
    smaller, larger = (u, v) if len(u) <= len(v) else (v, u)
    dot = sum(weight * larger.get(label, 0.0) for label, weight in smaller.items())
    norm_u = math.sqrt(sum(w * w for w in u.values()))
    norm_v = math.sqrt(sum(w * w for w in v.values()))
    denominator = norm_u * norm_v
    # Guard the *product*: with subnormal weights it can underflow to
    # zero even when both norms are individually non-zero.
    if denominator == 0.0:
        return 0.0
    return max(0.0, min(1.0, dot / denominator))


def jaccard_similarity(u: Vector, v: Vector) -> float:
    """Weighted (Ruzicka) Jaccard: sum of mins over sum of maxes."""
    if not u or not v:
        return 0.0
    labels = set(u) | set(v)
    numerator = sum(min(u.get(label, 0.0), v.get(label, 0.0)) for label in labels)
    denominator = sum(max(u.get(label, 0.0), v.get(label, 0.0)) for label in labels)
    if denominator == 0.0:
        return 0.0
    return max(0.0, min(1.0, numerator / denominator))


def pearson_similarity(u: Vector, v: Vector) -> float:
    """Pearson correlation over the union of dimensions, mapped to [0, 1].

    Correlation ranges [-1, 1]; it is rescaled via ``(r + 1) / 2`` so the
    function is interchangeable with :func:`cosine_similarity`.
    """
    labels = sorted(set(u) | set(v))
    if len(labels) < 2:
        return 0.0
    xs = [u.get(label, 0.0) for label in labels]
    ys = [v.get(label, 0.0) for label in labels]
    n = len(labels)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    denominator = math.sqrt(var_x) * math.sqrt(var_y)
    # Multiplying the roots (not rooting the product) avoids the product
    # underflowing to zero for subnormal variances.
    if denominator == 0.0:
        return 0.0
    r = cov / denominator
    return max(0.0, min(1.0, (r + 1.0) / 2.0))


VECTOR_MEASURES = {
    "cosine": cosine_similarity,
    "jaccard": jaccard_similarity,
    "pearson": pearson_similarity,
}
