"""From-scratch XML substrate: lexer, parser, DOM, DTD, serialization.

Public surface::

    from repro.xmltree import parse, parse_file, build_tree
    document = parse("<films><picture title='Rear Window'/></films>")
    tree = build_tree(document.root)
"""

from .dom import NodeKind, XMLNode, XMLTree, build_tree
from .dtd import DTD, parse_dtd
from .errors import (
    DTDError,
    TreeError,
    ValidationError,
    XMLEntityError,
    XMLError,
    XMLSyntaxError,
)
from .lexer import Token, TokenType, XMLLexer, tokenize
from .parser import Document, Element, Text, XMLParser, parse, parse_file
from .xpath import XPathSyntaxError, select, select_one
from .serializer import (
    serialize_document,
    serialize_element,
    serialize_semantic_tree,
)

__all__ = [
    "DTD",
    "DTDError",
    "Document",
    "Element",
    "NodeKind",
    "Text",
    "Token",
    "TokenType",
    "TreeError",
    "ValidationError",
    "XMLEntityError",
    "XMLError",
    "XMLLexer",
    "XMLNode",
    "XMLParser",
    "XMLSyntaxError",
    "XMLTree",
    "XPathSyntaxError",
    "build_tree",
    "parse",
    "parse_dtd",
    "parse_file",
    "serialize_document",
    "serialize_element",
    "select",
    "select_one",
    "serialize_semantic_tree",
    "tokenize",
]
