"""Rooted ordered labeled tree model for XML documents (paper Definition 1).

An XML document is modeled as a rooted ordered labeled tree where:

* element and attribute nodes carry their tag/attribute name as label;
* attribute nodes appear as children of their containing element, sorted
  by attribute name and placed *before* all sub-elements;
* element/attribute text values are decomposed into tokens, each mapped
  to a leaf node labeled with the token and ordered by appearance.

Every node exposes the quantities used throughout the paper: its preorder
index ``T[i]``, label ``T[i].l``, depth ``T[i].d`` (in edges), fan-out
``T[i].f`` (number of children) and *density* (number of children with
distinct labels, written ``x.f-bar`` in the paper).

Trees are immutable after construction; :class:`XMLTree` caches global
statistics (max depth, max fan-out, max density) that the ambiguity
measures normalize against.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterator, Sequence

from .errors import TreeError


class NodeKind(enum.Enum):
    """What an XML tree node stands for in the source document."""

    ELEMENT = "element"
    ATTRIBUTE = "attribute"
    VALUE_TOKEN = "value_token"


class XMLNode:
    """One node of a rooted ordered labeled tree.

    Attributes
    ----------
    label:
        The node label (tag name, attribute name, or text token), as
        produced by linguistic pre-processing.
    kind:
        Whether this node came from an element, attribute, or text token.
    tokens:
        The individual word tokens of a compound label (e.g. ``first`` and
        ``name`` for the tag ``FirstName``).  For simple labels this is a
        one-element tuple equal to ``(label,)``.
    raw:
        The original, unprocessed string from the document (useful for
        serialization and for error messages).
    """

    __slots__ = (
        "label",
        "kind",
        "tokens",
        "raw",
        "parent",
        "children",
        "index",
        "depth",
        "_tree",
    )

    def __init__(
        self,
        label: str,
        kind: NodeKind = NodeKind.ELEMENT,
        tokens: Sequence[str] | None = None,
        raw: str | None = None,
    ):
        self.label = label
        self.kind = kind
        self.tokens: tuple[str, ...] = tuple(tokens) if tokens else (label,)
        self.raw = raw if raw is not None else label
        self.parent: XMLNode | None = None
        self.children: list[XMLNode] = []
        self.index: int = -1       # preorder index, assigned by XMLTree
        self.depth: int = 0        # edges from root, assigned by XMLTree
        self._tree: "XMLTree | None" = None

    # -- structure ------------------------------------------------------

    def add_child(self, child: "XMLNode") -> "XMLNode":
        """Append ``child`` and return it (supports fluent building)."""
        if self._tree is not None:
            raise TreeError("cannot modify a node already frozen into a tree")
        child.parent = self
        self.children.append(child)
        return child

    @property
    def fan_out(self) -> int:
        """Out-degree: the number of children (``T[i].f``)."""
        return len(self.children)

    @property
    def density(self) -> int:
        """Number of children having *distinct* labels (``x.f-bar``).

        Paper Assumption 3: distinct children labels hint at the node's
        meaning, so density (not raw fan-out) drives the ambiguity measure.
        """
        return len({child.label for child in self.children})

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.children

    @property
    def is_compound(self) -> bool:
        """True when the label was split into more than one token."""
        return len(self.tokens) > 1

    # -- traversal -------------------------------------------------------

    def preorder(self) -> Iterator["XMLNode"]:
        """Yield this node and all descendants in document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def ancestors(self) -> Iterator["XMLNode"]:
        """Yield ancestors from parent up to (and including) the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root_path(self) -> list["XMLNode"]:
        """Nodes from the tree root down to this node (inclusive)."""
        path = [self, *self.ancestors()]
        path.reverse()
        return path

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (including self)."""
        return sum(1 for _ in self.preorder())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XMLNode({self.label!r}, {self.kind.value}, i={self.index})"


class XMLTree:
    """A frozen rooted ordered labeled tree with cached statistics.

    Construction assigns preorder indices and depths; afterwards the node
    structure must not be mutated.  ``tree[i]`` returns the i-th node in
    preorder (the paper's ``T[i]`` notation).
    """

    def __init__(self, root: XMLNode):
        self.root = root
        self._nodes: list[XMLNode] = []
        self._freeze()
        self.max_depth = max(node.depth for node in self._nodes)
        self.max_fan_out = max(node.fan_out for node in self._nodes)
        self.max_density = max(node.density for node in self._nodes)

    def _freeze(self) -> None:
        index = 0
        stack: list[tuple[XMLNode, int]] = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            node.index = index
            node.depth = depth
            node._tree = self
            self._nodes.append(node)
            index += 1
            for child in reversed(node.children):
                stack.append((child, depth + 1))

    # -- node access -------------------------------------------------------

    def __getitem__(self, index: int) -> XMLNode:
        try:
            return self._nodes[index]
        except IndexError:
            raise TreeError(f"no node with preorder index {index}") from None

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[XMLNode]:
        return iter(self._nodes)

    @property
    def nodes(self) -> list[XMLNode]:
        """All nodes in preorder (a copy-safe read-only view by convention)."""
        return self._nodes

    def find_all(self, label: str) -> list[XMLNode]:
        """All nodes carrying ``label`` (preorder order)."""
        return [node for node in self._nodes if node.label == label]

    def find(self, label: str) -> XMLNode:
        """First node carrying ``label``; raises if absent."""
        for node in self._nodes:
            if node.label == label:
                return node
        raise TreeError(f"no node labeled {label!r}")

    # -- distances ----------------------------------------------------------

    def distance(self, a: XMLNode, b: XMLNode) -> int:
        """Number of edges on the unique path between ``a`` and ``b``.

        Computed via the lowest common ancestor:
        ``dist(a, b) = depth(a) + depth(b) - 2 * depth(lca(a, b))``.
        """
        if a._tree is not self or b._tree is not self:
            raise TreeError("both nodes must belong to this tree")
        x, y = a, b
        while x.depth > y.depth:
            x = x.parent  # type: ignore[assignment]
        while y.depth > x.depth:
            y = y.parent  # type: ignore[assignment]
        while x is not y:
            x = x.parent  # type: ignore[assignment]
            y = y.parent  # type: ignore[assignment]
        lca_depth = x.depth
        return a.depth + b.depth - 2 * lca_depth

    def nodes_at_distance(self, center: XMLNode, d: int) -> list[XMLNode]:
        """All nodes exactly ``d`` edges away from ``center`` (an XML ring).

        Implemented as a breadth-first expansion over the undirected tree;
        results are returned in preorder order for determinism.
        """
        ring = [node for node in self._nodes if self.distance(center, node) == d]
        return ring


# -- tokenizer plumbing -----------------------------------------------------

#: A label processor takes a raw tag/attribute name and returns the list of
#: word tokens it decomposes into (after stop-word removal / stemming).
LabelProcessor = Callable[[str], list[str]]

#: A value processor takes raw text content and returns word tokens.
ValueProcessor = Callable[[str], list[str]]


def _default_label_processor(raw: str) -> list[str]:
    """Fallback label processing: lowercase, split on ``_`` and camelCase."""
    pieces: list[str] = []
    for chunk in raw.replace("-", "_").split("_"):
        word = ""
        for ch in chunk:
            if ch.isupper() and word and not word[-1].isupper():
                pieces.append(word)
                word = ch
            else:
                word += ch
        if word:
            pieces.append(word)
    return [piece.lower() for piece in pieces if piece]


def _default_value_processor(raw: str) -> list[str]:
    """Fallback value processing: lowercase whitespace tokenization."""
    return [tok.lower() for tok in raw.split() if any(c.isalnum() for c in tok)]


def build_tree(
    element,
    include_values: bool = True,
    label_processor: LabelProcessor | None = None,
    value_processor: ValueProcessor | None = None,
) -> XMLTree:
    """Build a rooted ordered labeled tree from a parsed XML element.

    Parameters
    ----------
    element:
        The root :class:`repro.xmltree.parser.Element` of a parsed document.
    include_values:
        When True (*structure-and-content*, the paper's default) text values
        are tokenized into leaf nodes; when False (*structure-only*) values
        are dropped.
    label_processor / value_processor:
        Linguistic pre-processing hooks; :mod:`repro.linguistics.pipeline`
        provides the paper-faithful versions, the defaults are simple
        lowercase splitters so the DOM works standalone.
    """
    lp = label_processor or _default_label_processor
    vp = value_processor or _default_value_processor
    root = _convert_element(element, include_values, lp, vp)
    return XMLTree(root)


def _convert_element(element, include_values, lp, vp) -> XMLNode:
    tokens = lp(element.name) or [element.name.lower()]
    node = XMLNode(
        label=" ".join(tokens),
        kind=NodeKind.ELEMENT,
        tokens=tokens,
        raw=element.name,
    )
    # Attributes first, sorted by name (paper Section 3.1).
    for attr_name in sorted(element.attributes):
        attr_tokens = lp(attr_name) or [attr_name.lower()]
        attr_node = XMLNode(
            label=" ".join(attr_tokens),
            kind=NodeKind.ATTRIBUTE,
            tokens=attr_tokens,
            raw=attr_name,
        )
        node.add_child(attr_node)
        if include_values:
            _attach_value_tokens(attr_node, element.attributes[attr_name], vp)
    for child in element.children:
        # Parser children are Element or Text objects.
        if hasattr(child, "name"):
            node.add_child(_convert_element(child, include_values, lp, vp))
        elif include_values:
            _attach_value_tokens(node, child.content, vp)
    return node


def _attach_value_tokens(parent: XMLNode, text: str, vp) -> None:
    for token in vp(text):
        parent.add_child(
            XMLNode(label=token, kind=NodeKind.VALUE_TOKEN, tokens=[token], raw=token)
        )
