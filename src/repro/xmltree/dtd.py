"""A minimal DTD grammar parser and validator.

The paper's test corpora are each described by a DTD grammar
(``shakespeare.dtd``, ``movies.dtd``, ``personnel.dtd``, ...).  The
dataset generators in :mod:`repro.datasets` declare those grammars with
this module and validate every generated document against them, which
keeps the synthetic corpora structurally honest.

Supported declarations::

    <!ELEMENT name EMPTY>
    <!ELEMENT name ANY>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT name (a, b?, c*, (d | e)+)>
    <!ATTLIST name attr CDATA #REQUIRED>
    <!ATTLIST name attr CDATA #IMPLIED>

Content models are compiled to small NFA-free recursive matchers (the
grammars involved are tiny, so backtracking cost is irrelevant).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import DTDError, ValidationError
from .parser import Element


# -- content model AST --------------------------------------------------------


@dataclass
class _Name:
    """Match exactly one child element with this name."""

    name: str


@dataclass
class _Seq:
    """Match the parts one after another."""

    parts: list


@dataclass
class _Choice:
    """Match exactly one of the alternatives."""

    parts: list


@dataclass
class _Repeat:
    """Apply a ``?``, ``*`` or ``+`` cardinality to an inner model."""

    inner: object
    op: str  # '?', '*', '+'


@dataclass
class ElementDecl:
    """A compiled ``<!ELEMENT>`` declaration."""

    name: str
    model: object  # 'EMPTY' | 'ANY' | 'PCDATA' | 'MIXED' | AST node
    mixed_names: frozenset[str] = frozenset()


@dataclass
class AttributeDecl:
    """One attribute in an ``<!ATTLIST>`` declaration."""

    element: str
    name: str
    attr_type: str  # e.g. CDATA
    default: str    # '#REQUIRED' | '#IMPLIED' | literal default


@dataclass
class DTD:
    """A parsed DTD: element declarations and attribute lists by element."""

    elements: dict[str, ElementDecl] = field(default_factory=dict)
    attributes: dict[str, list[AttributeDecl]] = field(default_factory=dict)

    def validate(self, root: Element) -> None:
        """Validate a document subtree; raises :class:`ValidationError`."""
        for element in root.iter():
            self._validate_element(element)

    def _validate_element(self, element: Element) -> None:
        decl = self.elements.get(element.name)
        if decl is None:
            raise ValidationError(f"element <{element.name}> not declared")
        self._validate_attributes(element)
        child_names = [c.name for c in element.child_elements()]
        if decl.model == "ANY":
            return
        if decl.model == "EMPTY":
            if element.children:
                raise ValidationError(f"<{element.name}> declared EMPTY but has content")
            return
        if decl.model == "PCDATA":
            if child_names:
                raise ValidationError(
                    f"<{element.name}> declared (#PCDATA) but has child elements"
                )
            return
        if decl.model == "MIXED":
            bad = [n for n in child_names if n not in decl.mixed_names]
            if bad:
                raise ValidationError(
                    f"<{element.name}> mixed content disallows children {bad}"
                )
            return
        if element.text().strip():
            raise ValidationError(
                f"<{element.name}> has element content model but contains text"
            )
        if not _matches(decl.model, child_names):
            raise ValidationError(
                f"<{element.name}> children {child_names} do not match its "
                "content model"
            )

    def _validate_attributes(self, element: Element) -> None:
        declared = {d.name: d for d in self.attributes.get(element.name, [])}
        for attr in element.attributes:
            if attr not in declared:
                raise ValidationError(
                    f"attribute '{attr}' not declared for <{element.name}>"
                )
        for decl in declared.values():
            if decl.default == "#REQUIRED" and decl.name not in element.attributes:
                raise ValidationError(
                    f"required attribute '{decl.name}' missing on <{element.name}>"
                )


# -- content model matching ----------------------------------------------------


def _matches(model, names: list[str]) -> bool:
    """True when the whole ``names`` sequence matches ``model``."""
    return any(rest == len(names) for rest in _match_from(model, names, 0))


def _match_from(model, names: list[str], pos: int):
    """Yield every position reachable after matching ``model`` at ``pos``."""
    if isinstance(model, _Name):
        if pos < len(names) and names[pos] == model.name:
            yield pos + 1
        return
    if isinstance(model, _Seq):
        positions = {pos}
        for part in model.parts:
            next_positions: set[int] = set()
            for p in positions:
                next_positions.update(_match_from(part, names, p))
            positions = next_positions
            if not positions:
                return
        yield from positions
        return
    if isinstance(model, _Choice):
        seen: set[int] = set()
        for part in model.parts:
            for p in _match_from(part, names, pos):
                if p not in seen:
                    seen.add(p)
                    yield p
        return
    if isinstance(model, _Repeat):
        if model.op in ("?", "*"):
            yield pos
        positions = {pos}
        seen = set()
        # Iterate matches of the inner model until no progress is made.
        while positions:
            next_positions: set[int] = set()
            for p in positions:
                for q in _match_from(model.inner, names, p):
                    if q not in seen and q > p:
                        seen.add(q)
                        next_positions.add(q)
            for q in next_positions:
                yield q
            if model.op == "?":
                return
            positions = next_positions
        return
    raise DTDError(f"unknown content model node {model!r}")


# -- DTD text parsing -----------------------------------------------------------


class _ModelParser:
    """Recursive-descent parser for element content model expressions."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0

    def parse(self):
        model = self._parse_group_or_name()
        self._skip_ws()
        if self._pos != len(self._text):
            raise DTDError(f"trailing content model text: {self._text[self._pos:]!r}")
        return model

    def _skip_ws(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos].isspace():
            self._pos += 1

    def _peek(self) -> str:
        return self._text[self._pos] if self._pos < len(self._text) else ""

    def _parse_group_or_name(self):
        self._skip_ws()
        if self._peek() == "(":
            model = self._parse_group()
        else:
            model = _Name(self._parse_name())
        return self._maybe_repeat(model)

    def _maybe_repeat(self, model):
        if self._peek() and self._peek() in "?*+":
            op = self._text[self._pos]
            self._pos += 1
            return _Repeat(model, op)
        return model

    def _parse_name(self) -> str:
        start = self._pos
        while self._pos < len(self._text) and (
            self._text[self._pos].isalnum() or self._text[self._pos] in "_:.-"
        ):
            self._pos += 1
        if start == self._pos:
            raise DTDError(f"expected name at offset {start} in content model")
        return self._text[start : self._pos]

    def _parse_group(self):
        assert self._peek() == "("
        self._pos += 1
        parts = [self._parse_group_or_name()]
        separator = ""
        while True:
            self._skip_ws()
            ch = self._peek()
            if not ch:
                raise DTDError("unterminated group in content model")
            if ch == ")":
                self._pos += 1
                break
            if ch in ",|":
                if separator and ch != separator:
                    raise DTDError("cannot mix ',' and '|' in one group")
                separator = ch
                self._pos += 1
                parts.append(self._parse_group_or_name())
            else:
                raise DTDError(f"unexpected character {ch!r} in content model")
        group = _Choice(parts) if separator == "|" else _Seq(parts)
        return self._maybe_repeat(group)


def parse_dtd(text: str) -> DTD:
    """Parse DTD declaration text into a :class:`DTD`."""
    dtd = DTD()
    pos = 0
    while True:
        start = text.find("<!", pos)
        if start == -1:
            break
        end = text.find(">", start)
        if end == -1:
            raise DTDError("unterminated declaration")
        decl = text[start + 2 : end].strip()
        pos = end + 1
        if decl.startswith("ELEMENT"):
            _parse_element_decl(decl[len("ELEMENT") :].strip(), dtd)
        elif decl.startswith("ATTLIST"):
            _parse_attlist_decl(decl[len("ATTLIST") :].strip(), dtd)
        elif decl.startswith("--"):
            continue  # comment
        elif decl.startswith("ENTITY"):
            continue  # entities handled by the lexer, ignore here
        else:
            raise DTDError(f"unsupported declaration <!{decl.split(None, 1)[0]}...>")
    return dtd


def _parse_element_decl(body: str, dtd: DTD) -> None:
    parts = body.split(None, 1)
    if len(parts) != 2:
        raise DTDError(f"malformed ELEMENT declaration: {body!r}")
    name, model_text = parts
    model_text = model_text.strip()
    if model_text == "EMPTY":
        decl = ElementDecl(name, "EMPTY")
    elif model_text == "ANY":
        decl = ElementDecl(name, "ANY")
    elif model_text.replace(" ", "") == "(#PCDATA)":
        decl = ElementDecl(name, "PCDATA")
    elif model_text.replace(" ", "").startswith("(#PCDATA|"):
        inner = model_text.strip()
        if inner.endswith("*"):
            inner = inner[:-1]
        inner = inner.strip("() ")
        names = frozenset(
            piece.strip() for piece in inner.split("|") if piece.strip() != "#PCDATA"
        )
        decl = ElementDecl(name, "MIXED", names)
    else:
        decl = ElementDecl(name, _ModelParser(model_text).parse())
    dtd.elements[name] = decl


def _parse_attlist_decl(body: str, dtd: DTD) -> None:
    tokens = body.split()
    if not tokens:
        raise DTDError("empty ATTLIST declaration")
    element = tokens[0]
    rest = tokens[1:]
    if len(rest) % 3 != 0:
        raise DTDError(f"malformed ATTLIST for '{element}': {body!r}")
    for i in range(0, len(rest), 3):
        attr_name, attr_type, default = rest[i : i + 3]
        dtd.attributes.setdefault(element, []).append(
            AttributeDecl(element, attr_name, attr_type, default)
        )
