"""Exception hierarchy for the XML substrate.

Every error raised while lexing, parsing, validating, or navigating XML
documents derives from :class:`XMLError`, so callers can catch a single
base class at API boundaries.
"""

from __future__ import annotations


class XMLError(Exception):
    """Base class for all XML substrate errors."""


class XMLSyntaxError(XMLError):
    """Raised when the input text is not well-formed XML.

    Carries the 1-based ``line`` and ``column`` of the offending character
    so error messages can point at the exact location in the source.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XMLEntityError(XMLSyntaxError):
    """Raised for undefined or malformed entity references."""


class DTDError(XMLError):
    """Raised when a DTD declaration cannot be parsed."""


class ValidationError(XMLError):
    """Raised when a document does not conform to its DTD grammar."""


class TreeError(XMLError):
    """Raised for invalid tree operations (bad indices, detached nodes)."""
