"""XML character data escaping and entity resolution.

Implements the five predefined XML 1.0 entities plus numeric character
references (decimal ``&#NN;`` and hexadecimal ``&#xNN;``).  The functions
here are pure and reusable by both the lexer (unescaping input) and the
serializer (escaping output).
"""

from __future__ import annotations

from .errors import XMLEntityError

#: The five entities predefined by the XML 1.0 specification.
PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_ESCAPE_TEXT = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ESCAPE_ATTR = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(text: str) -> str:
    """Escape character data for use as XML element content."""
    return "".join(_ESCAPE_TEXT.get(ch, ch) for ch in text)


def escape_attribute(text: str) -> str:
    """Escape character data for use inside a double-quoted attribute."""
    return "".join(_ESCAPE_ATTR.get(ch, ch) for ch in text)


def resolve_entity(name: str, extra_entities: dict[str, str] | None = None) -> str:
    """Resolve a single entity reference body (without ``&`` and ``;``).

    Supports predefined entities, user-supplied general entities (e.g. from
    a DTD), and numeric character references.  Raises
    :class:`XMLEntityError` for anything unresolvable.
    """
    if name.startswith("#"):
        return _resolve_char_reference(name)
    if name in PREDEFINED_ENTITIES:
        return PREDEFINED_ENTITIES[name]
    if extra_entities and name in extra_entities:
        return extra_entities[name]
    raise XMLEntityError(f"undefined entity reference '&{name};'")


def _resolve_char_reference(body: str) -> str:
    """Resolve ``#NN`` or ``#xNN`` numeric character reference bodies."""
    digits = body[1:]
    try:
        if digits[:1] in ("x", "X"):
            codepoint = int(digits[1:], 16)
        else:
            codepoint = int(digits, 10)
    except ValueError:
        raise XMLEntityError(f"malformed character reference '&{body};'") from None
    if not 0 < codepoint <= 0x10FFFF:
        raise XMLEntityError(f"character reference out of range '&{body};'")
    return chr(codepoint)


def unescape(text: str, extra_entities: dict[str, str] | None = None) -> str:
    """Replace every entity/character reference in ``text`` with its value."""
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise XMLEntityError("unterminated entity reference")
        out.append(resolve_entity(text[i + 1 : end], extra_entities))
        i = end + 1
    return "".join(out)
