"""A streaming tokenizer for XML 1.0 documents.

The lexer turns raw XML text into a flat sequence of :class:`Token`
objects (tag opens/closes, attributes folded into tag tokens, character
data, CDATA sections, comments, processing instructions, and doctype
declarations).  The parser in :mod:`repro.xmltree.parser` consumes these
tokens to build a DOM.

The implementation is a hand-written scanner: no regular-expression
backtracking, a single pass over the input, and precise line/column
tracking for error messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from .errors import XMLSyntaxError
from .escape import unescape

#: Characters allowed to start an XML name (ASCII subset plus common
#: Unicode letters; intentionally permissive for real-world documents).
_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")


def is_name_start(ch: str) -> bool:
    """Return True if ``ch`` may start an XML name."""
    return ch.isalpha() or ch in _NAME_START_EXTRA


def is_name_char(ch: str) -> bool:
    """Return True if ``ch`` may appear inside an XML name."""
    return ch.isalnum() or ch in _NAME_EXTRA


class TokenType(enum.Enum):
    """Kinds of lexical tokens produced by :class:`XMLLexer`."""

    START_TAG = "start_tag"          # <name attr="v">
    END_TAG = "end_tag"              # </name>
    EMPTY_TAG = "empty_tag"          # <name attr="v"/>
    TEXT = "text"                    # character data (entities resolved)
    CDATA = "cdata"                  # <![CDATA[...]]>
    COMMENT = "comment"              # <!-- ... -->
    PI = "pi"                        # <?target data?>
    DOCTYPE = "doctype"              # <!DOCTYPE ...>
    EOF = "eof"


@dataclass
class Token:
    """One lexical token.

    ``value`` holds the tag/PI name or the text content; ``attributes``
    is populated only for START_TAG / EMPTY_TAG tokens and preserves the
    attribute order of the source document.
    """

    type: TokenType
    value: str
    line: int
    column: int
    attributes: list[tuple[str, str]] = field(default_factory=list)


class XMLLexer:
    """Single-pass scanner over an XML source string.

    Parameters
    ----------
    source:
        The complete XML document text.
    entities:
        Optional additional general entities (name -> replacement text),
        typically harvested from an internal DTD subset.
    """

    def __init__(self, source: str, entities: dict[str, str] | None = None):
        self._src = source
        self._pos = 0
        self._line = 1
        self._col = 1
        self.entities: dict[str, str] = dict(entities or {})

    # -- low-level cursor helpers -------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self._pos + offset
        return self._src[idx] if idx < len(self._src) else ""

    def _advance(self, count: int = 1) -> str:
        """Consume ``count`` characters, maintaining line/column."""
        chunk = self._src[self._pos : self._pos + count]
        for ch in chunk:
            if ch == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._pos += count
        return chunk

    def _error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, self._line, self._col)

    def _expect(self, literal: str) -> None:
        if not self._src.startswith(literal, self._pos):
            raise self._error(f"expected '{literal}'")
        self._advance(len(literal))

    def _skip_whitespace(self) -> None:
        while self._peek() and self._peek() in " \t\r\n":
            self._advance()

    def _read_until(self, terminator: str, error: str) -> str:
        """Consume and return everything up to ``terminator`` (consumed)."""
        end = self._src.find(terminator, self._pos)
        if end == -1:
            raise self._error(error)
        text = self._src[self._pos : end]
        self._advance(end - self._pos + len(terminator))
        return text

    def _read_name(self) -> str:
        if not is_name_start(self._peek()):
            raise self._error(f"invalid name start character {self._peek()!r}")
        start = self._pos
        self._advance()
        while is_name_char(self._peek()):
            self._advance()
        return self._src[start : self._pos]

    # -- token production ----------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until EOF.  The final token is always EOF."""
        while self._pos < len(self._src):
            line, col = self._line, self._col
            if self._peek() == "<":
                yield self._lex_markup(line, col)
            else:
                yield self._lex_text(line, col)
        yield Token(TokenType.EOF, "", self._line, self._col)

    def _lex_text(self, line: int, col: int) -> Token:
        end = self._src.find("<", self._pos)
        if end == -1:
            end = len(self._src)
        raw = self._src[self._pos : end]
        self._advance(end - self._pos)
        try:
            text = unescape(raw, self.entities)
        except XMLSyntaxError as exc:
            # Re-raise with position, preserving the subclass (e.g.
            # XMLEntityError) so callers can catch specific failures.
            raise type(exc)(str(exc), line, col) from None
        return Token(TokenType.TEXT, text, line, col)

    def _lex_markup(self, line: int, col: int) -> Token:
        nxt = self._peek(1)
        if nxt == "/":
            return self._lex_end_tag(line, col)
        if nxt == "?":
            return self._lex_pi(line, col)
        if nxt == "!":
            if self._src.startswith("<!--", self._pos):
                return self._lex_comment(line, col)
            if self._src.startswith("<![CDATA[", self._pos):
                return self._lex_cdata(line, col)
            if self._src.startswith("<!DOCTYPE", self._pos):
                return self._lex_doctype(line, col)
            raise self._error("unrecognized markup declaration")
        return self._lex_start_tag(line, col)

    def _lex_comment(self, line: int, col: int) -> Token:
        self._advance(4)  # <!--
        body = self._read_until("-->", "unterminated comment")
        if "--" in body:
            raise XMLSyntaxError("'--' not allowed inside comment", line, col)
        return Token(TokenType.COMMENT, body, line, col)

    def _lex_cdata(self, line: int, col: int) -> Token:
        self._advance(9)  # <![CDATA[
        body = self._read_until("]]>", "unterminated CDATA section")
        return Token(TokenType.CDATA, body, line, col)

    def _lex_pi(self, line: int, col: int) -> Token:
        self._advance(2)  # <?
        body = self._read_until("?>", "unterminated processing instruction")
        return Token(TokenType.PI, body, line, col)

    def _lex_doctype(self, line: int, col: int) -> Token:
        self._advance(9)  # <!DOCTYPE
        depth = 1
        start = self._pos
        while depth:
            ch = self._peek()
            if not ch:
                raise self._error("unterminated DOCTYPE declaration")
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
            self._advance()
        body = self._src[start : self._pos - 1].strip()
        self._harvest_internal_entities(body)
        return Token(TokenType.DOCTYPE, body, line, col)

    def _harvest_internal_entities(self, doctype_body: str) -> None:
        """Collect ``<!ENTITY name "value">`` from an internal DTD subset."""
        cursor = 0
        while True:
            idx = doctype_body.find("<!ENTITY", cursor)
            if idx == -1:
                return
            end = doctype_body.find(">", idx)
            if end == -1:
                return
            decl = doctype_body[idx + len("<!ENTITY") : end].strip()
            cursor = end + 1
            parts = decl.split(None, 1)
            if len(parts) != 2:
                continue
            name, rest = parts
            rest = rest.strip()
            if len(rest) >= 2 and rest[0] in "\"'" and rest[-1] == rest[0]:
                self.entities[name] = rest[1:-1]

    def _lex_end_tag(self, line: int, col: int) -> Token:
        self._advance(2)  # </
        name = self._read_name()
        self._skip_whitespace()
        self._expect(">")
        return Token(TokenType.END_TAG, name, line, col)

    def _lex_start_tag(self, line: int, col: int) -> Token:
        self._advance(1)  # <
        name = self._read_name()
        attributes = self._lex_attributes()
        self._skip_whitespace()
        if self._peek() == "/":
            self._advance()
            self._expect(">")
            return Token(TokenType.EMPTY_TAG, name, line, col, attributes)
        self._expect(">")
        return Token(TokenType.START_TAG, name, line, col, attributes)

    def _lex_attributes(self) -> list[tuple[str, str]]:
        attributes: list[tuple[str, str]] = []
        seen: set[str] = set()
        while True:
            self._skip_whitespace()
            ch = self._peek()
            if ch in (">", "/", ""):
                return attributes
            name = self._read_name()
            if name in seen:
                raise self._error(f"duplicate attribute '{name}'")
            seen.add(name)
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            quote = self._peek()
            if quote not in "\"'":
                raise self._error("attribute value must be quoted")
            self._advance()
            raw = self._read_until(quote, "unterminated attribute value")
            if "<" in raw:
                raise self._error(f"'<' not allowed in attribute value of '{name}'")
            attributes.append((name, unescape(raw, self.entities)))


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: return the full token list for ``source``."""
    return list(XMLLexer(source).tokens())
