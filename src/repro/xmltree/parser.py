"""Recursive XML document parser built on :mod:`repro.xmltree.lexer`.

Produces a minimal document model (:class:`Document`, :class:`Element`,
:class:`Text`) that preserves document order and attribute order.  The
rooted-ordered-labeled-tree used by the disambiguation framework is built
from this model by :func:`repro.xmltree.dom.build_tree`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import XMLSyntaxError
from .lexer import Token, TokenType, XMLLexer


@dataclass
class Text:
    """A run of character data inside an element."""

    content: str


@dataclass
class Element:
    """An XML element: name, ordered attributes, and ordered children."""

    name: str
    attributes: dict[str, str] = field(default_factory=dict)
    children: list["Element | Text"] = field(default_factory=list)

    def child_elements(self) -> list["Element"]:
        """Only the element children, in document order."""
        return [c for c in self.children if isinstance(c, Element)]

    def text(self) -> str:
        """Concatenated direct text content (whitespace preserved)."""
        return "".join(c.content for c in self.children if isinstance(c, Text))

    def find(self, name: str) -> "Element | None":
        """First direct child element called ``name`` (or None)."""
        for child in self.child_elements():
            if child.name == name:
                return child
        return None

    def find_all(self, name: str) -> list["Element"]:
        """All direct child elements called ``name``."""
        return [c for c in self.child_elements() if c.name == name]

    def iter(self) -> list["Element"]:
        """This element and every descendant element, preorder."""
        out: list[Element] = []
        stack = [self]
        while stack:
            element = stack.pop()
            out.append(element)
            stack.extend(reversed(element.child_elements()))
        return out


@dataclass
class Document:
    """A parsed XML document: prolog info plus the single root element."""

    root: Element
    doctype: str | None = None
    processing_instructions: list[str] = field(default_factory=list)


class XMLParser:
    """Token-stream parser enforcing XML well-formedness rules.

    The parser validates tag nesting/matching, rejects content outside the
    root element, and drops comments (they carry no tree information).
    Whitespace-only text between elements is discarded; mixed content text
    is preserved verbatim.
    """

    def __init__(self, source: str):
        self._lexer = XMLLexer(source)
        self._tokens = self._lexer.tokens()
        self._current: Token = next(self._tokens)

    def _advance(self) -> Token:
        token = self._current
        self._current = next(self._tokens)
        return token

    def parse(self) -> Document:
        """Parse the token stream into a single-rooted ``Document``."""
        doctype: str | None = None
        pis: list[str] = []
        root: Element | None = None
        while self._current.type is not TokenType.EOF:
            token = self._current
            if token.type is TokenType.TEXT:
                if token.value.strip():
                    raise XMLSyntaxError(
                        "character data outside root element",
                        token.line,
                        token.column,
                    )
                self._advance()
            elif token.type is TokenType.COMMENT:
                self._advance()
            elif token.type is TokenType.PI:
                pis.append(token.value)
                self._advance()
            elif token.type is TokenType.DOCTYPE:
                if root is not None:
                    raise XMLSyntaxError(
                        "DOCTYPE after root element", token.line, token.column
                    )
                doctype = token.value
                self._advance()
            elif token.type in (TokenType.START_TAG, TokenType.EMPTY_TAG):
                if root is not None:
                    raise XMLSyntaxError(
                        "multiple root elements", token.line, token.column
                    )
                root = self._parse_element()
            else:
                raise XMLSyntaxError(
                    f"unexpected {token.type.value} at document level",
                    token.line,
                    token.column,
                )
        if root is None:
            raise XMLSyntaxError("document has no root element")
        return Document(root=root, doctype=doctype, processing_instructions=pis)

    def _parse_element(self) -> Element:
        token = self._advance()
        element = Element(name=token.value, attributes=dict(token.attributes))
        if token.type is TokenType.EMPTY_TAG:
            return element
        while True:
            current = self._current
            if current.type is TokenType.END_TAG:
                if current.value != element.name:
                    raise XMLSyntaxError(
                        f"mismatched end tag </{current.value}>, "
                        f"expected </{element.name}>",
                        current.line,
                        current.column,
                    )
                self._advance()
                return element
            if current.type is TokenType.EOF:
                raise XMLSyntaxError(
                    f"unexpected end of document inside <{element.name}>",
                    current.line,
                    current.column,
                )
            if current.type in (TokenType.START_TAG, TokenType.EMPTY_TAG):
                element.children.append(self._parse_element())
            elif current.type is TokenType.TEXT:
                if current.value.strip():
                    element.children.append(Text(current.value))
                self._advance()
            elif current.type is TokenType.CDATA:
                element.children.append(Text(current.value))
                self._advance()
            elif current.type in (TokenType.COMMENT, TokenType.PI):
                self._advance()
            else:
                raise XMLSyntaxError(
                    f"unexpected {current.type.value} inside element",
                    current.line,
                    current.column,
                )


def parse(source: str) -> Document:
    """Parse an XML string into a :class:`Document`."""
    return XMLParser(source).parse()


def parse_file(path) -> Document:
    """Parse the XML file at ``path`` (text mode, UTF-8)."""
    with open(path, encoding="utf-8") as handle:
        return parse(handle.read())
