"""Serialization of XML documents and semantic XML trees.

Two serializers live here:

* :func:`serialize_document` — writes a parsed :class:`Document` /
  :class:`Element` back to XML text (round-trip companion of the parser).
* :func:`serialize_semantic_tree` — writes the *output* of the XSDF
  pipeline: the original tree with ``concept`` annotations attached to
  every disambiguated node, as described in the paper's Figure 4.
"""

from __future__ import annotations

from io import StringIO

from .escape import escape_attribute, escape_text
from .parser import Document, Element, Text

_INDENT = "  "


def serialize_element(element: Element, indent: int = 0, pretty: bool = True) -> str:
    """Serialize one element subtree to XML text."""
    out = StringIO()
    _write_element(out, element, indent, pretty)
    return out.getvalue()


def serialize_document(document: Document, pretty: bool = True) -> str:
    """Serialize a whole document, including an XML declaration."""
    out = StringIO()
    out.write('<?xml version="1.0"?>')
    if pretty:
        out.write("\n")
    _write_element(out, document.root, 0, pretty)
    return out.getvalue()


def _write_element(out: StringIO, element: Element, indent: int, pretty: bool) -> None:
    pad = _INDENT * indent if pretty else ""
    out.write(f"{pad}<{element.name}")
    for name, value in element.attributes.items():
        out.write(f' {name}="{escape_attribute(value)}"')
    if not element.children:
        out.write("/>")
        if pretty:
            out.write("\n")
        return
    only_text = all(isinstance(child, Text) for child in element.children)
    out.write(">")
    if only_text:
        for child in element.children:
            out.write(escape_text(child.content))  # type: ignore[union-attr]
        out.write(f"</{element.name}>")
        if pretty:
            out.write("\n")
        return
    if pretty:
        out.write("\n")
    for child in element.children:
        if isinstance(child, Element):
            _write_element(out, child, indent + 1, pretty)
        else:
            child_pad = _INDENT * (indent + 1) if pretty else ""
            out.write(f"{child_pad}{escape_text(child.content)}")
            if pretty:
                out.write("\n")
    out.write(f"{pad}</{element.name}>")
    if pretty:
        out.write("\n")


def serialize_semantic_tree(tree, assignments, network, pretty: bool = True) -> str:
    """Serialize an XML tree with semantic concept annotations.

    Parameters
    ----------
    tree:
        The :class:`repro.xmltree.dom.XMLTree` that was disambiguated.
    assignments:
        Mapping from node preorder index to the assigned concept id (the
        output of the XSDF pipeline); nodes without an entry are emitted
        untouched.
    network:
        The reference semantic network, used to embed the concept label
        and gloss alongside the identifier.

    Output nodes carry ``concept``, and ``gloss`` attributes, e.g.::

        <star concept="lead#n#2" gloss="an actor who plays a principal role">
    """
    from .dom import NodeKind  # local import to avoid a cycle at module load

    out = StringIO()
    out.write('<?xml version="1.0"?>')
    if pretty:
        out.write("\n")

    def write(node, indent: int) -> None:
        pad = _INDENT * indent if pretty else ""
        tag = node.raw if node.kind is NodeKind.ELEMENT else node.label.replace(" ", "_")
        if node.kind is NodeKind.VALUE_TOKEN:
            tag = "token"
        out.write(f"{pad}<{tag}")
        if node.kind is NodeKind.VALUE_TOKEN:
            out.write(f' value="{escape_attribute(node.label)}"')
        concept_id = assignments.get(node.index)
        if concept_id is not None:
            concept = network.concept(concept_id)
            out.write(f' concept="{escape_attribute(concept_id)}"')
            out.write(f' gloss="{escape_attribute(concept.gloss)}"')
        if not node.children:
            out.write("/>")
            if pretty:
                out.write("\n")
            return
        out.write(">")
        if pretty:
            out.write("\n")
        for child in node.children:
            write(child, indent + 1)
        out.write(f"{pad}</{tag}>")
        if pretty:
            out.write("\n")

    write(tree.root, 0)
    return out.getvalue()
