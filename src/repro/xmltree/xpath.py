"""A small XPath-like query engine over rooted labeled trees.

Supports the navigational core of XPath 1.0 over
:class:`~repro.xmltree.dom.XMLTree` nodes — enough for selecting
disambiguation targets and for the semantic-search application:

* ``/a/b``        — child steps from the root
* ``//b``         — descendant-or-self step
* ``*``           — any label
* ``a[2]``        — positional predicate (1-based, per XPath)
* ``a[b]``        — existence predicate (has a child labeled ``b``)
* ``a[b=value]``  — child-value predicate (``b``'s child token equals
  ``value`` after pre-processing)

Paths are matched against the *pre-processed* node labels the rest of
the framework uses (lowercase, compounds joined with spaces).

Example::

    from repro.xmltree.xpath import select
    stars = select(tree, "//cast/star")
    second_act = select(tree, "/play/act[2]")
"""

from __future__ import annotations

from dataclasses import dataclass

from .dom import XMLNode, XMLTree
from .errors import XMLError


class XPathSyntaxError(XMLError):
    """Raised for malformed path expressions."""


@dataclass(frozen=True)
class _Step:
    label: str                 # label to match, or "*"
    descendant: bool           # preceded by "//"
    position: int | None       # [N]
    child_label: str | None    # [b] or [b=v]
    child_value: str | None    # [b=v]


def _parse_predicate(body: str) -> tuple[int | None, str | None, str | None]:
    body = body.strip()
    if not body:
        raise XPathSyntaxError("empty predicate")
    if body.isdigit():
        position = int(body)
        if position < 1:
            raise XPathSyntaxError("positions are 1-based")
        return position, None, None
    if "=" in body:
        child, value = body.split("=", 1)
        child = child.strip()
        value = value.strip().strip("'\"")
        if not child:
            raise XPathSyntaxError(f"malformed predicate [{body}]")
        return None, child, value
    return None, body, None


def parse_path(path: str) -> list[_Step]:
    """Compile a path expression into steps."""
    if not path or not path.startswith("/"):
        raise XPathSyntaxError("paths must start with '/' or '//'")
    steps: list[_Step] = []
    i = 0
    n = len(path)
    while i < n:
        if path[i] != "/":
            raise XPathSyntaxError(f"expected '/' at offset {i} in {path!r}")
        descendant = False
        i += 1
        if i < n and path[i] == "/":
            descendant = True
            i += 1
        start = i
        while i < n and path[i] not in "/[":
            i += 1
        label = path[start:i].strip()
        if not label:
            raise XPathSyntaxError(f"missing step label in {path!r}")
        position = child_label = child_value = None
        if i < n and path[i] == "[":
            end = path.find("]", i)
            if end == -1:
                raise XPathSyntaxError(f"unterminated predicate in {path!r}")
            position, child_label, child_value = _parse_predicate(
                path[i + 1 : end]
            )
            i = end + 1
        steps.append(
            _Step(label, descendant, position, child_label, child_value)
        )
    return steps


def _label_matches(node: XMLNode, label: str) -> bool:
    return label == "*" or node.label == label


def _node_value(node: XMLNode) -> str:
    """Concatenated child-token labels (the node's processed value)."""
    from .dom import NodeKind

    return " ".join(
        child.label for child in node.children
        if child.kind is NodeKind.VALUE_TOKEN
    )


def _predicate_holds(node: XMLNode, step: _Step) -> bool:
    if step.child_label is None:
        return True
    for child in node.children:
        if child.label != step.child_label:
            continue
        if step.child_value is None:
            return True
        if _node_value(child) == step.child_value:
            return True
    return False


def _apply_step(candidates: list[XMLNode], step: _Step) -> list[XMLNode]:
    matched: list[XMLNode] = []
    seen: set[int] = set()
    for node in candidates:
        if step.descendant:
            pool = list(node.preorder())
        else:
            pool = node.children
        siblings_taken = 0
        for candidate in pool:
            if not _label_matches(candidate, step.label):
                continue
            if not _predicate_holds(candidate, step):
                continue
            siblings_taken += 1
            if step.position is not None and siblings_taken != step.position:
                continue
            if candidate.index not in seen:
                seen.add(candidate.index)
                matched.append(candidate)
    matched.sort(key=lambda n: n.index)
    return matched


def select(tree: XMLTree, path: str) -> list[XMLNode]:
    """All nodes matching ``path``, in document order."""
    steps = parse_path(path)
    # The first step starts from a virtual node whose only child is the
    # root (so "/root-label" works as in XPath).
    first, *rest = steps
    if first.descendant:
        pool = list(tree.root.preorder())
    else:
        pool = [tree.root]
    current = [
        node for node in pool
        if _label_matches(node, first.label) and _predicate_holds(node, first)
    ]
    if first.position is not None:
        current = current[first.position - 1 : first.position]
    for step in rest:
        current = _apply_step(current, step)
        if not current:
            break
    return current


def select_one(tree: XMLTree, path: str) -> XMLNode | None:
    """First match of ``path`` (document order), or None."""
    matches = select(tree, path)
    return matches[0] if matches else None
