"""Tests for the downstream application modules."""

from __future__ import annotations

import pytest

from repro.applications import (
    SemanticIndex,
    SemanticMatcher,
    cluster_documents,
    cluster_profiles,
    concept_profile,
    label_profile,
)
from repro.core.config import XSDFConfig
from repro.core.framework import XSDF

DOC_MOVIES_A = """<films><picture title="Rear Window">
    <director>Hitchcock</director><genre>mystery</genre>
    <cast><star>Kelly</star><star>Stewart</star></cast>
    </picture></films>"""

DOC_MOVIES_B = """<movies><movie year="1958"><name>Vertigo</name>
    <directed_by>Alfred Hitchcock</directed_by>
    <actors><actor><FirstName>Kim</FirstName>
    <LastName>Novak</LastName></actor></actors></movie></movies>"""

DOC_PRODUCTS = """<products><product><title>Retro camera pack</title>
    <brand>Kelly Media</brand><line>camera line</line>
    <stock>9</stock><order>PO-7</order><price>49.99</price>
    <head>great value</head><state>new</state></product></products>"""


@pytest.fixture(scope="module")
def xsdf(lexicon):
    return XSDF(lexicon, XSDFConfig(
        sphere_radius=2, strip_target_dimension=True,
    ))


class TestMatching:
    def test_cross_vocabulary_correspondences(self, xsdf):
        matcher = SemanticMatcher(xsdf)
        correspondences = matcher.match(DOC_MOVIES_A, DOC_MOVIES_B)
        pairs = {(c.label_a, c.label_b) for c in correspondences}
        # Both "film" (root) and "picture" resolve to movie.n.01; the
        # greedy one-to-one assignment pairs exactly one of them with
        # the other vocabulary's "movie".
        assert pairs & {("picture", "movie"), ("film", "movie")}
        assert ("star", "actor") in pairs

    def test_exact_matches_flagged(self, xsdf):
        matcher = SemanticMatcher(xsdf)
        correspondences = matcher.match(DOC_MOVIES_A, DOC_MOVIES_B)
        exact = [c for c in correspondences if c.exact]
        assert exact and all(c.score == 1.0 for c in exact)

    def test_one_to_one_assignment(self, xsdf):
        matcher = SemanticMatcher(xsdf)
        correspondences = matcher.match(DOC_MOVIES_A, DOC_MOVIES_B)
        lefts = [c.label_a for c in correspondences]
        rights = [c.label_b for c in correspondences]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))

    def test_min_score_filters(self, xsdf):
        strict = SemanticMatcher(xsdf, min_score=0.999)
        loose = SemanticMatcher(xsdf, min_score=0.3)
        assert len(strict.match(DOC_MOVIES_A, DOC_PRODUCTS)) <= \
            len(loose.match(DOC_MOVIES_A, DOC_PRODUCTS))


class TestClustering:
    def test_profiles_nonempty(self, xsdf):
        tree = xsdf.build_tree(DOC_MOVIES_A)
        assert concept_profile(xsdf, tree)
        assert label_profile(tree)

    def test_semantic_clustering_groups_movie_docs(self, xsdf):
        clustering = cluster_documents(
            xsdf, [DOC_MOVIES_A, DOC_MOVIES_B, DOC_PRODUCTS], threshold=0.3
        )
        assert clustering.cluster_of(0) == clustering.cluster_of(1)
        assert clustering.cluster_of(0) != clustering.cluster_of(2)

    def test_threshold_one_keeps_singletons(self, xsdf):
        clustering = cluster_documents(
            xsdf, [DOC_MOVIES_A, DOC_MOVIES_B], threshold=1.01
        )
        assert len(clustering) == 2

    def test_cluster_profiles_deterministic(self):
        profiles = [
            {"a": 1.0, "b": 1.0},
            {"a": 1.0, "b": 0.9},
            {"z": 1.0},
        ]
        a = cluster_profiles(profiles, threshold=0.5)
        b = cluster_profiles(profiles, threshold=0.5)
        assert a.clusters == b.clusters == [[0, 1], [2]]

    def test_cluster_of_unknown_raises(self):
        clustering = cluster_profiles([{"a": 1.0}])
        with pytest.raises(KeyError):
            clustering.cluster_of(99)


class TestSemanticIndex:
    @pytest.fixture()
    def index(self, xsdf, lexicon):
        index = SemanticIndex(lexicon)
        index.add("movies-a", xsdf, DOC_MOVIES_A)
        index.add("movies-b", xsdf, DOC_MOVIES_B)
        index.add("products", xsdf, DOC_PRODUCTS)
        return index

    def test_indexing_counts(self, index):
        assert len(index) > 10
        assert index.documents == {"movies-a", "movies-b", "products"}

    def test_duplicate_document_rejected(self, index, xsdf):
        with pytest.raises(ValueError):
            index.add("movies-a", xsdf, DOC_MOVIES_A)

    def test_cross_vocabulary_search(self, index):
        documents = index.search_documents("movie")
        assert "movies-a" in documents and "movies-b" in documents
        assert "products" not in documents

    def test_expansion_reaches_hyponyms(self, index, lexicon):
        # "actress" expands to its hyponyms (Grace Kelly, Kim Novak).
        expanded = index.expand_query("actress", depth=1)
        assert "kelly.n.01" in expanded
        hits = index.search("actress")
        assert {h.document for h in hits} == {"movies-a", "movies-b"}

    def test_depth_zero_no_expansion(self, index):
        no_expansion = index.expand_query("performer", depth=0)
        expanded = index.expand_query("performer", depth=2)
        assert no_expansion < expanded

    def test_hits_sorted_by_score(self, index):
        hits = index.search("merchandise")
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)
