"""Unit tests for the comparative baselines."""

from __future__ import annotations

import math

import pytest

from repro.baselines import (
    BagOfWordsDisambiguator,
    FirstSenseBaseline,
    ParentContextDisambiguator,
    RandomSenseBaseline,
    RootPathDisambiguator,
    SubtreeContextDisambiguator,
    VersatileStructuralDisambiguator,
)
from repro.core.framework import XSDF
from repro.core.config import XSDFConfig
from repro.xmltree.parser import parse

ALL_BASELINES = [
    FirstSenseBaseline,
    RandomSenseBaseline,
    RootPathDisambiguator,
    VersatileStructuralDisambiguator,
    ParentContextDisambiguator,
    SubtreeContextDisambiguator,
    BagOfWordsDisambiguator,
]


@pytest.fixture()
def tree(lexicon, figure1_xml):
    return XSDF(lexicon, XSDFConfig()).build_tree(figure1_xml)


class TestCommonInterface:
    @pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
    def test_disambiguates_figure1(self, baseline_cls, lexicon, tree):
        baseline = baseline_cls(lexicon)
        result = baseline.disambiguate_tree(tree)
        assert result.assignments
        for assignment in result.assignments:
            # Every chosen concept must be a real sense of the label or
            # of one of its tokens.
            candidates = {c.id for c in lexicon.senses(assignment.label)}
            for token in assignment.label.split():
                candidates |= {c.id for c in lexicon.senses(token)}
            assert assignment.concept_id in candidates

    @pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
    def test_explicit_targets_respected(self, baseline_cls, lexicon, tree):
        baseline = baseline_cls(lexicon)
        star = tree.find("star")
        result = baseline.disambiguate_tree(tree, targets=[star])
        assert result.n_targets == 1
        assert result.assignments[0].label == "star"

    @pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
    def test_unknown_node_returns_none(self, baseline_cls, lexicon):
        baseline = baseline_cls(lexicon)
        tree = XSDF(lexicon, XSDFConfig()).build_tree(
            "<zzzz><qqqq/></zzzz>"
        )
        assert baseline.disambiguate_node(tree, tree.root) is None


class TestTrivialBaselines:
    def test_first_sense_picks_rank_one(self, lexicon, tree):
        baseline = FirstSenseBaseline(lexicon)
        star = tree.find("star")
        assignment = baseline.disambiguate_node(tree, star)
        assert assignment.concept_id == lexicon.senses("star")[0].id

    def test_random_is_seed_deterministic(self, lexicon, tree):
        a = RandomSenseBaseline(lexicon, seed=7).disambiguate_tree(tree)
        b = RandomSenseBaseline(lexicon, seed=7).disambiguate_tree(tree)
        assert [x.chosen for x in a.assignments] == \
            [y.chosen for y in b.assignments]

    def test_random_seeds_differ(self, lexicon, tree):
        a = RandomSenseBaseline(lexicon, seed=1).disambiguate_tree(tree)
        b = RandomSenseBaseline(lexicon, seed=2).disambiguate_tree(tree)
        assert [x.chosen for x in a.assignments] != \
            [y.chosen for y in b.assignments]


class TestVSD:
    def test_gaussian_decay_monotone(self, lexicon):
        vsd = VersatileStructuralDisambiguator(lexicon, sigma=1.5)
        weights = [vsd.decay(d) for d in range(5)]
        assert weights[0] == 1.0
        assert weights == sorted(weights, reverse=True)

    def test_cutoff_bounds_context(self, lexicon, tree):
        wide = VersatileStructuralDisambiguator(
            lexicon, sigma=2.0, weight_cutoff=0.1
        )
        narrow = VersatileStructuralDisambiguator(
            lexicon, sigma=0.8, weight_cutoff=0.5
        )
        star = tree.find("star")
        assert len(wide._context(tree, star)) > len(narrow._context(tree, star))

    def test_invalid_parameters(self, lexicon):
        with pytest.raises(ValueError):
            VersatileStructuralDisambiguator(lexicon, sigma=0)
        with pytest.raises(ValueError):
            VersatileStructuralDisambiguator(lexicon, weight_cutoff=1.5)

    def test_crossable_radius_matches_cutoff(self, lexicon):
        vsd = VersatileStructuralDisambiguator(
            lexicon, sigma=1.5, weight_cutoff=0.1
        )
        max_distance = int(
            math.floor(math.sqrt(-2 * 1.5**2 * math.log(0.1)))
        )
        assert vsd.decay(max_distance) >= 0.1
        assert vsd.decay(max_distance + 1) < 0.1


class TestRPD:
    def test_context_is_root_path_plus_chain(self, lexicon, tree):
        rpd = RootPathDisambiguator(lexicon)
        cast = tree.find("cast")
        context_labels = [n.label for n in rpd._path_context(cast)]
        assert "film" in context_labels        # ancestor (stemmed "films")
        assert "picture" in context_labels     # ancestor
        assert "star" in context_labels        # first-child continuation
        assert "plot" not in context_labels    # sibling subtree excluded

    def test_root_node_context_is_descending_chain(self, lexicon, tree):
        rpd = RootPathDisambiguator(lexicon)
        context = rpd._path_context(tree.root)
        assert context  # the chain below the root
        assert all(n is not tree.root for n in context)


class TestParentAndSubtree:
    def test_parent_context_content(self, lexicon, tree):
        parent = ParentContextDisambiguator(lexicon)
        star = tree.find("star")
        labels = {n.label for n in parent._context(star)}
        assert "cast" in labels              # parent
        assert "star" in labels              # sibling
        assert "films" not in labels         # grandparent excluded

    def test_subtree_vector_counts_descendants(self, lexicon, tree):
        subtree = SubtreeContextDisambiguator(lexicon)
        cast = tree.find("cast")
        vector = subtree._label_vector(cast)
        assert vector["star"] == 2.0
        assert vector["cast"] == 1.0
        assert "films" not in vector


class TestBagOfWords:
    def test_document_context_cached_per_tree(self, lexicon, tree):
        bow = BagOfWordsDisambiguator(lexicon)
        star = tree.find("star")
        bow.disambiguate_node(tree, star)
        cache_id = bow._doc_cache[0]
        bow.disambiguate_node(tree, tree.find("cast"))
        assert bow._doc_cache[0] == cache_id

    def test_same_label_gets_same_sense_anywhere(self, lexicon):
        # Whole-document context is position-independent by design.
        bow = BagOfWordsDisambiguator(lexicon)
        tree = XSDF(lexicon, XSDFConfig()).build_tree(
            "<films><cast><star>x</star></cast><star>y</star></films>"
        )
        stars = tree.find_all("star")
        picks = {
            bow.disambiguate_node(tree, node).concept_id for node in stars
        }
        assert len(picks) == 1
