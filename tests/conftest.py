"""Shared test fixtures.

``lexicon`` is session-scoped (building the curated network is the
expensive part of most tests); ``figure6_tree`` reconstructs the paper's
Figure 6 example tree exactly, preorder indices and all, so the sphere /
context-vector tests can check the published numbers.
"""

from __future__ import annotations

import pytest

from repro.semnet import default_lexicon
from repro.xmltree.dom import NodeKind, XMLNode, XMLTree

FIGURE1_XML = """<?xml version="1.0"?>
<films>
  <picture title="Rear Window">
    <director>Hitchcock</director>
    <year>1954</year>
    <genre>mystery</genre>
    <cast>
      <star>Stewart</star>
      <star>Kelly</star>
    </cast>
    <plot>A wheelchair bound photographer spies on his neighbors</plot>
  </picture>
</films>
"""


@pytest.fixture(scope="session")
def lexicon():
    """The curated mini-WordNet (shared, treat as read-only)."""
    return default_lexicon()


@pytest.fixture()
def figure6_tree() -> XMLTree:
    """The paper's Figure 6 tree.

    Preorder: films(0) picture(1) cast(2) star(3) stewart(4) star(5)
    kelly(6) plot(7) — ``cast`` is ``T[2]``, the worked example's target.
    """
    films = XMLNode("films")
    picture = films.add_child(XMLNode("picture"))
    cast = picture.add_child(XMLNode("cast"))
    star1 = cast.add_child(XMLNode("star"))
    star1.add_child(XMLNode("stewart", kind=NodeKind.VALUE_TOKEN))
    star2 = cast.add_child(XMLNode("star"))
    star2.add_child(XMLNode("kelly", kind=NodeKind.VALUE_TOKEN))
    picture.add_child(XMLNode("plot"))
    return XMLTree(films)


@pytest.fixture()
def figure1_xml() -> str:
    """The paper's Figure 1 (Doc 1) XML text."""
    return FIGURE1_XML
