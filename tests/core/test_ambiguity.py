"""Unit tests for the ambiguity degree measure (paper Section 3.3)."""

from __future__ import annotations

import pytest

from repro.core.ambiguity import (
    amb_density,
    amb_depth,
    amb_polysemy,
    ambiguity_degree,
    rank_nodes,
    select_targets,
    struct_degree,
    tree_ambiguity_degree,
    tree_struct_degree,
)
from repro.core.config import AmbiguityWeights
from repro.semnet.builders import NetworkBuilder
from repro.xmltree.dom import XMLNode, XMLTree


@pytest.fixture()
def network():
    b = NetworkBuilder()
    b.synset("mono.1", ["mono"], "only sense")
    for i in range(1, 5):
        b.synset(f"quad.{i}", ["quad"], f"sense {i}")
    for i in range(1, 8):
        b.synset(f"max.{i}", ["maxi"], f"sense {i}")
    return b.build()


@pytest.fixture()
def tree():
    """root(quad) -> a(quad){x,y}, b(mono){z,z}, c(unknownword)."""
    root = XMLNode("quad")
    a = root.add_child(XMLNode("quad"))
    a.add_child(XMLNode("x"))
    a.add_child(XMLNode("y"))
    b = root.add_child(XMLNode("mono"))
    b.add_child(XMLNode("z"))
    b.add_child(XMLNode("z"))
    root.add_child(XMLNode("unknownword"))
    return XMLTree(root)


class TestPolysemyFactor:
    def test_proposition1_normalization(self, network):
        # maxi has 7 senses = network maximum.
        assert amb_polysemy("maxi", network) == 1.0
        assert amb_polysemy("quad", network) == pytest.approx(3 / 6)

    def test_monosemous_is_zero(self, network):
        assert amb_polysemy("mono", network) == 0.0

    def test_unknown_is_zero(self, network):
        assert amb_polysemy("nothing", network) == 0.0

    def test_assumption1_monotone(self, network):
        # More senses -> more ambiguous.
        assert amb_polysemy("maxi", network) > amb_polysemy("quad", network) \
            > amb_polysemy("mono", network)


class TestDepthFactor:
    def test_root_is_most_ambiguous(self, tree):
        assert amb_depth(tree[0], tree) == 1.0

    def test_deepest_is_least(self, tree):
        deepest = max(tree, key=lambda n: n.depth)
        assert amb_depth(deepest, tree) == 0.0

    def test_assumption2_monotone(self, tree):
        values = [amb_depth(n, tree) for n in tree]
        depths = [n.depth for n in tree]
        for v1, d1 in zip(values, depths):
            for v2, d2 in zip(values, depths):
                if d1 < d2:
                    assert v1 > v2


class TestDensityFactor:
    def test_distinct_children_reduce_ambiguity(self, tree):
        a = tree[1]       # two distinct child labels
        b = tree.find("mono")  # two identical child labels
        assert amb_density(a, tree) < amb_density(b, tree)

    def test_leaf_has_maximal_density_factor(self, tree):
        leaf = tree.find("x")
        assert amb_density(leaf, tree) == 1.0


class TestAmbiguityDegree:
    def test_definition3_bounds(self, tree, network):
        for node in tree:
            degree = ambiguity_degree(node, tree, network)
            assert 0.0 <= degree <= 1.0

    def test_assumption4_monosemous_minimal(self, tree, network):
        mono = tree.find("mono")
        assert ambiguity_degree(mono, tree, network) == 0.0

    def test_polysemy_weight_zero_kills_selection(self, tree, network):
        weights = AmbiguityWeights(polysemy=0.0)
        assert all(
            ambiguity_degree(n, tree, network, weights) == 0.0 for n in tree
        )

    def test_root_more_ambiguous_than_midlevel_same_label(self, tree, network):
        # Both labeled "quad": the root is shallower.  The mid node has
        # *distinct* children which further reduce its ambiguity.
        root_degree = ambiguity_degree(tree[0], tree, network)
        mid_degree = ambiguity_degree(tree[1], tree, network)
        assert root_degree > mid_degree

    def test_compound_label_averages_tokens(self, network):
        root = XMLNode("quad")
        compound = root.add_child(
            XMLNode("quad mono", tokens=("quad", "mono"))
        )
        tree = XMLTree(root)
        single = ambiguity_degree(root, tree, network)
        averaged = ambiguity_degree(compound, tree, network)
        assert averaged < single  # mono contributes 0

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            AmbiguityWeights(polysemy=1.5)


class TestSelection:
    def test_threshold_zero_selects_all_known(self, tree, network):
        targets = select_targets(tree, network, threshold=0.0)
        labels = {n.label for n in targets}
        assert labels == {"quad", "mono"}  # unknown labels never selected

    def test_high_threshold_selects_none(self, tree, network):
        assert select_targets(tree, network, threshold=0.99) == []

    def test_selection_monotone_in_threshold(self, tree, network):
        low = select_targets(tree, network, threshold=0.0)
        high = select_targets(tree, network, threshold=0.05)
        assert set(n.index for n in high) <= set(n.index for n in low)

    def test_rank_nodes_sorted(self, tree, network):
        reports = rank_nodes(tree, network)
        degrees = [r.degree for r in reports]
        assert degrees == sorted(degrees, reverse=True)
        assert len(reports) == len(tree)


class TestStructDegree:
    def test_bounds(self, tree):
        for node in tree:
            assert 0.0 <= struct_degree(node, tree) <= 1.0

    def test_weights_normalized(self, tree):
        node = tree[1]
        assert struct_degree(node, tree, 1, 1, 1) == pytest.approx(
            struct_degree(node, tree, 2, 2, 2)
        )

    def test_invalid_weights(self, tree):
        with pytest.raises(ValueError):
            struct_degree(tree[0], tree, 0, 0, 0)

    def test_tree_aggregates(self, tree, network):
        assert 0.0 <= tree_ambiguity_degree(tree, network) <= 1.0
        assert 0.0 <= tree_struct_degree(tree) <= 1.0
