"""Property-based tests for core invariants (hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ambiguity import ambiguity_degree, select_targets
from repro.core.context_vector import context_vector, struct_proximity
from repro.core.sphere import build_sphere
from repro.semnet.builders import NetworkBuilder
from repro.xmltree.dom import XMLNode, XMLTree

_labels = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
)


@st.composite
def trees(draw):
    labels = draw(st.lists(_labels, min_size=2, max_size=30))
    root = XMLNode(labels[0])
    nodes = [root]
    for label in labels[1:]:
        parent = draw(st.sampled_from(nodes))
        nodes.append(parent.add_child(XMLNode(label)))
    return XMLTree(root)


@pytest.fixture(scope="module")
def toy_network():
    b = NetworkBuilder()
    b.synset("root", ["thing"], "anything at all", freq=1)
    b.synset("alpha.1", ["alpha"], "first sense of alpha",
             hypernym="root", freq=5)
    b.synset("alpha.2", ["alpha"], "second sense of alpha",
             hypernym="root", freq=3)
    b.synset("beta.1", ["beta"], "only sense of beta",
             hypernym="root", freq=4)
    b.synset("gamma.1", ["gamma"], "one of two gammas",
             hypernym="alpha.1", freq=2)
    b.synset("gamma.2", ["gamma"], "the other gamma",
             hypernym="beta.1", freq=2)
    return b.build()


# -- sphere invariants ------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(trees(), st.integers(0, 4), st.data())
def test_sphere_membership_matches_tree_distance(tree, radius, data):
    center = data.draw(st.sampled_from(tree.nodes))
    sphere = build_sphere(tree, center, radius)
    member_indices = {m.node.index for m in sphere}
    for node in tree:
        inside = tree.distance(center, node) <= radius
        assert (node.index in member_indices) == inside
    for member in sphere:
        assert member.distance == tree.distance(center, member.node)


@settings(max_examples=50, deadline=None)
@given(trees(), st.integers(0, 3), st.data())
def test_spheres_grow_monotonically(tree, radius, data):
    center = data.draw(st.sampled_from(tree.nodes))
    smaller = {m.node.index for m in build_sphere(tree, center, radius)}
    larger = {m.node.index for m in build_sphere(tree, center, radius + 1)}
    assert smaller <= larger


# -- context vector invariants ----------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(trees(), st.integers(1, 3), st.data())
def test_context_vector_weights_bounded(tree, radius, data):
    center = data.draw(st.sampled_from(tree.nodes))
    vector = context_vector(build_sphere(tree, center, radius))
    assert vector  # the center's own label is always a dimension
    for weight in vector.values():
        assert 0.0 < weight <= 1.0


@settings(max_examples=50, deadline=None)
@given(trees(), st.integers(1, 3), st.data())
def test_center_label_weight_dominates_equal_counts(tree, radius, data):
    """Dimension weights respect Assumption 5 (proximity).

    If a label occurs exactly once (only at the center), its weight must
    be at least the weight of any other label that also occurs once.
    """
    center = data.draw(st.sampled_from(tree.nodes))
    sphere = build_sphere(tree, center, radius)
    counts: dict[str, int] = {}
    for member in sphere:
        counts[member.node.label] = counts.get(member.node.label, 0) + 1
    vector = context_vector(sphere)
    if counts[center.label] == 1:
        for label, count in counts.items():
            if count == 1:
                assert vector[center.label] >= vector[label] - 1e-12


@given(st.integers(0, 10), st.integers(1, 10))
def test_struct_proximity_bounds(distance, radius):
    if distance > radius:
        return
    value = struct_proximity(distance, radius)
    assert 1.0 / (radius + 1.0) - 1e-12 <= value <= 1.0


# -- ambiguity invariants -----------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(tree=trees())
def test_ambiguity_degree_bounded(toy_network, tree):
    for node in tree:
        degree = ambiguity_degree(node, tree, toy_network)
        assert 0.0 <= degree <= 1.0


@settings(max_examples=50, deadline=None)
@given(tree=trees(), t1=st.floats(0.0, 1.0), t2=st.floats(0.0, 1.0))
def test_target_selection_monotone(toy_network, tree, t1, t2):
    low, high = sorted((t1, t2))
    selected_low = {n.index for n in select_targets(tree, toy_network, low)}
    selected_high = {n.index for n in select_targets(tree, toy_network, high)}
    assert selected_high <= selected_low
