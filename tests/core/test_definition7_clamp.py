"""Regression pin for faithfulness note 5 (DESIGN.md).

Definition 7 claims context-vector weights ``w = 2 * Freq / (|S|+1)``
lie in [0, 1], but its implicit maximum (every sphere node sharing one
label at ``Struct = 1/2``) only holds for ``d = 1``: for ``d >= 2`` a
label concentrated in the innermost ring carries ``Struct = 1 - 1/(d+1)
> 1/2`` per occurrence and the raw ratio exceeds 1.  The implementation
clamps weights to 1 in exactly that degenerate single-dominant-label
regime — asserted nowhere until this test.
"""

from __future__ import annotations

from repro.core.context_vector import (
    context_vector,
    label_frequencies,
    struct_proximity,
)
from repro.core.sphere import build_sphere
from repro.xmltree.dom import XMLNode, XMLTree


def _dominant_label_tree(n_children: int) -> tuple[XMLTree, XMLNode]:
    """A target whose entire context is one label in the innermost ring."""
    root = XMLNode("cast")
    for _ in range(n_children):
        root.add_child(XMLNode("star"))
    return XMLTree(root), root


class TestDefinition7Clamp:
    def test_raw_weight_exceeds_unit_interval_for_d2(self):
        """The paper's formula breaks its own bound at d >= 2."""
        tree, target = _dominant_label_tree(10)
        sphere = build_sphere(tree, target, 2)
        raw = label_frequencies(sphere)["star"] / ((len(sphere) + 1.0) / 2.0)
        # Struct(1, 2) = 2/3 > 1/2, so ten occurrences overflow the bound:
        # w_raw = 10 * (2/3) / (12/2) = 10/9.
        assert struct_proximity(1, 2) > 0.5
        assert raw > 1.0

    def test_weight_is_clamped_to_one(self):
        tree, target = _dominant_label_tree(10)
        vector = context_vector(build_sphere(tree, target, 2))
        assert vector["star"] == 1.0

    def test_all_weights_stay_in_unit_interval(self):
        tree, target = _dominant_label_tree(10)
        for radius in (1, 2, 3):
            vector = context_vector(build_sphere(tree, target, radius))
            for label, weight in vector.items():
                assert 0.0 < weight <= 1.0, (radius, label, weight)

    def test_d1_regime_needs_no_clamp(self):
        """At d = 1 the claimed bound holds (Struct = 1/2 exactly)."""
        tree, target = _dominant_label_tree(10)
        sphere = build_sphere(tree, target, 1)
        raw = label_frequencies(sphere)["star"] / ((len(sphere) + 1.0) / 2.0)
        assert raw <= 1.0

    def test_clamp_preserves_relative_order_of_other_labels(self):
        """Clamping only touches the degenerate dominant label."""
        root = XMLNode("cast")
        for _ in range(10):
            root.add_child(XMLNode("star"))
        root.add_child(XMLNode("plot"))
        tree, target = XMLTree(root), root
        vector = context_vector(build_sphere(tree, target, 2))
        assert vector["star"] == 1.0
        assert 0.0 < vector["plot"] < vector["star"]
