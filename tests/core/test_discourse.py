"""Unit tests for the one-sense-per-discourse extension."""

from __future__ import annotations

import pytest

from repro.core.discourse import (
    disagreement_rate,
    discourse_votes,
    enforce_one_sense_per_discourse,
)
from repro.core.results import DisambiguationResult, SenseAssignment


def assignment(index, label, chosen, scores):
    return SenseAssignment(
        node_index=index,
        label=label,
        chosen=chosen,
        score=scores[chosen],
        concept_score=0.0,
        context_score=0.0,
        ambiguity=0.0,
        scores=scores,
    )


@pytest.fixture()
def split_result():
    """'line' occurs three times: twice verse, once (noisily) queue."""
    return DisambiguationResult(
        assignments=[
            assignment(1, "line", ("verse",), {("verse",): 0.8, ("queue",): 0.2}),
            assignment(2, "line", ("verse",), {("verse",): 0.7, ("queue",): 0.3}),
            assignment(3, "line", ("queue",), {("verse",): 0.4, ("queue",): 0.5}),
            assignment(4, "act", ("act.play",), {("act.play",): 0.9}),
        ],
        n_nodes=10,
        n_targets=4,
        radius=2,
    )


class TestVotesAndRates:
    def test_votes_accumulate_score_mass(self, split_result):
        votes = discourse_votes(split_result)
        assert votes["line"][("verse",)] == pytest.approx(0.8 + 0.7 + 0.4)
        assert votes["line"][("queue",)] == pytest.approx(0.2 + 0.3 + 0.5)

    def test_disagreement_rate(self, split_result):
        # 'line' is the only multi-occurrence label and it disagrees.
        assert disagreement_rate(split_result) == 1.0

    def test_disagreement_zero_when_consistent(self, split_result):
        fixed = enforce_one_sense_per_discourse(split_result)
        assert disagreement_rate(fixed) == 0.0


class TestEnforcement:
    def test_minority_occurrence_flipped(self, split_result):
        fixed = enforce_one_sense_per_discourse(split_result)
        line_senses = {
            a.chosen for a in fixed.assignments if a.label == "line"
        }
        assert line_senses == {("verse",)}

    def test_flipped_node_gets_its_own_score(self, split_result):
        fixed = enforce_one_sense_per_discourse(split_result)
        flipped = fixed.assignment_for(3)
        assert flipped.chosen == ("verse",)
        assert flipped.score == pytest.approx(0.4)

    def test_agreeing_assignments_reused(self, split_result):
        fixed = enforce_one_sense_per_discourse(split_result)
        assert fixed.assignment_for(1) is split_result.assignments[0]
        assert fixed.assignment_for(4) is split_result.assignments[3]

    def test_input_not_mutated(self, split_result):
        enforce_one_sense_per_discourse(split_result)
        assert split_result.assignment_for(3).chosen == ("queue",)

    def test_counts_preserved(self, split_result):
        fixed = enforce_one_sense_per_discourse(split_result)
        assert fixed.n_nodes == split_result.n_nodes
        assert fixed.n_targets == split_result.n_targets
        assert len(fixed.assignments) == len(split_result.assignments)

    def test_winner_missing_from_scores_untouched(self):
        # A compound node that never considered the document winner.
        result = DisambiguationResult(
            assignments=[
                assignment(1, "x", ("a",), {("a",): 0.9}),
                assignment(2, "x", ("b",), {("b",): 0.1}),
            ],
            n_nodes=3, n_targets=2, radius=1,
        )
        fixed = enforce_one_sense_per_discourse(result)
        assert fixed.assignment_for(2).chosen == ("b",)


class TestEndToEnd:
    def test_discourse_never_lowers_shakespeare_quality(self, lexicon):
        from repro.datasets import generate_test_corpus
        from repro.datasets.stats import document_tree
        from repro.evaluation import select_eval_nodes
        from repro.core import XSDF, XSDFConfig

        corpus = generate_test_corpus()
        xsdf = XSDF(lexicon, XSDFConfig(sphere_radius=1))
        correct_before = correct_after = total = 0
        for doc in corpus.by_group(1)[:3]:
            tree = document_tree(doc, lexicon)
            targets = select_eval_nodes(tree, doc)
            result = xsdf.disambiguate_tree(tree, targets=targets)
            fixed = enforce_one_sense_per_discourse(result)
            for before, after in zip(result.assignments, fixed.assignments):
                total += 1
                correct_before += before.concept_id == doc.gold[before.label]
                correct_after += after.concept_id == doc.gold[after.label]
        assert total > 0
        assert correct_after >= correct_before
