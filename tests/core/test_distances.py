"""Unit tests for the distance-policy extension (paper future work)."""

from __future__ import annotations

import pytest

from repro.core.distances import (
    DensityWeightedDistance,
    DirectionWeightedDistance,
    DistancePolicy,
    UniformDistance,
    resolve_policy,
)
from repro.core.sphere import build_sphere
from repro.xmltree.dom import XMLNode, XMLTree


@pytest.fixture()
def tree():
    """root -> hub(8 children) and root -> chain -> chain2 -> leaf."""
    root = XMLNode("root")
    hub = root.add_child(XMLNode("hub"))
    for i in range(8):
        hub.add_child(XMLNode(f"h{i}"))
    chain = root.add_child(XMLNode("chain"))
    chain2 = chain.add_child(XMLNode("chain2"))
    chain2.add_child(XMLNode("leaf"))
    return XMLTree(root)


class TestPolicyResolution:
    def test_none_is_uniform(self):
        assert isinstance(resolve_policy(None), UniformDistance)

    def test_names_resolve(self):
        assert isinstance(resolve_policy("direction"), DirectionWeightedDistance)
        assert isinstance(resolve_policy("density"), DensityWeightedDistance)

    def test_instance_passthrough(self):
        policy = DirectionWeightedDistance(2.0, 1.0)
        assert resolve_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_policy("teleport")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DirectionWeightedDistance(0, 1)
        with pytest.raises(ValueError):
            DensityWeightedDistance(penalty=-1)
        with pytest.raises(ValueError):
            DensityWeightedDistance(max_fan_out=0)


class TestUniformEquivalence:
    def test_uniform_policy_matches_bfs(self, tree):
        center = tree.find("chain")
        plain = build_sphere(tree, center, 2)
        priced = build_sphere(tree, center, 2, policy=UniformDistance())
        assert [(m.node.index, m.distance) for m in plain] == \
            [(m.node.index, float(m.distance)) for m in priced]


class TestDirectionWeighted:
    def test_descending_bias_prefers_subtree(self, tree):
        # Ascending costs 2, descending 1: radius 2 from "chain" reaches
        # its grandchild but not its parent's other subtree.
        policy = DirectionWeightedDistance(ascending_cost=2.0,
                                           descending_cost=1.0)
        sphere = build_sphere(tree, tree.find("chain"), 2, policy=policy)
        labels = {m.node.label for m in sphere}
        assert "leaf" in labels         # two descending hops = cost 2
        assert "root" in labels         # one ascending hop = cost 2
        assert "hub" not in labels      # up (2) + down (1) = 3 > 2

    def test_ascending_bias_prefers_ancestors(self, tree):
        policy = DirectionWeightedDistance(ascending_cost=0.5,
                                           descending_cost=2.0)
        sphere = build_sphere(tree, tree.find("leaf"), 1, policy=policy)
        labels = {m.node.label for m in sphere}
        assert {"chain2", "chain"} <= labels   # 0.5 + 0.5 up
        assert "root" not in labels            # 1.5 > 1


class TestDensityWeighted:
    def test_hub_children_cost_more(self, tree):
        policy = DensityWeightedDistance(penalty=8.0, max_fan_out=8)
        # From the root with radius 1.9: the chain child costs
        # 1 + 8*(2-1)/8 = 2 > 1.9... root has fan_out 2 -> cost 1+1 = 2.
        # Use the hub as center: its children cost 1 + 8*(8-1)/8 = 8.
        sphere = build_sphere(tree, tree.find("hub"), 2, policy=policy)
        labels = {m.node.label for m in sphere}
        assert "h0" not in labels   # hub crossing priced at 8
        assert "root" in labels     # root fan-out 2 -> cost 2

    def test_zero_penalty_is_uniform(self, tree):
        policy = DensityWeightedDistance(penalty=0.0)
        center = tree.find("chain")
        priced = build_sphere(tree, center, 2, policy=policy)
        plain = build_sphere(tree, center, 2)
        assert {m.node.index for m in priced} == {m.node.index for m in plain}


class TestFrameworkIntegration:
    def test_policy_through_config(self, lexicon, figure1_xml):
        from repro.core.config import XSDFConfig
        from repro.core.framework import XSDF

        default = XSDF(lexicon, XSDFConfig(sphere_radius=2))
        directed = XSDF(lexicon, XSDFConfig(
            sphere_radius=2,
            distance_policy=DirectionWeightedDistance(2.0, 1.0),
        ))
        base = default.disambiguate_document(figure1_xml)
        biased = directed.disambiguate_document(figure1_xml)
        assert len(base.assignments) == len(biased.assignments)

    def test_policy_by_name_through_config(self, lexicon, figure1_xml):
        from repro.core.config import XSDFConfig
        from repro.core.framework import XSDF

        system = XSDF(lexicon, XSDFConfig(distance_policy="density"))
        result = system.disambiguate_document(figure1_xml)
        assert result.assignments

    def test_policy_is_abstract(self):
        with pytest.raises(TypeError):
            DistancePolicy()  # type: ignore[abstract]
