"""Integration tests for the XSDF orchestrator."""

from __future__ import annotations

import pytest

from repro.core.config import (
    AmbiguityWeights,
    DisambiguationApproach,
    XSDFConfig,
)
from repro.core.framework import XSDF
from repro.xmltree.parser import parse


class TestConfigValidation:
    def test_defaults_valid(self):
        XSDFConfig()

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            XSDFConfig(ambiguity_threshold=1.5)

    def test_bad_radius(self):
        with pytest.raises(ValueError):
            XSDFConfig(sphere_radius=0)

    def test_negative_approach_weights(self):
        with pytest.raises(ValueError):
            XSDFConfig(concept_weight=-1)

    def test_zero_combined_weights(self):
        with pytest.raises(ValueError):
            XSDFConfig(
                approach=DisambiguationApproach.COMBINED,
                concept_weight=0, context_weight=0,
            )

    def test_unknown_vector_measure(self):
        with pytest.raises(ValueError):
            XSDFConfig(vector_measure="euclid")

    def test_weights_normalized(self):
        config = XSDFConfig(concept_weight=3, context_weight=1)
        assert config.normalized_approach_weights == (0.75, 0.25)


class TestEndToEnd:
    def test_figure1_document(self, lexicon, figure1_xml):
        xsdf = XSDF(lexicon, XSDFConfig(sphere_radius=2))
        result = xsdf.disambiguate_document(figure1_xml)
        assert result.n_targets > 10
        picks = {a.label: a.concept_id for a in result.assignments}
        # The framework's headline calls from the paper's narrative.
        assert picks["picture"] == "movie.n.01"
        assert picks["director"] == "director.n.01"
        assert picks["genre"] == "genre.n.01"
        assert picks["plot"] == "plot.n.02"

    def test_hybrid_resolves_kelly_to_grace(self, lexicon, figure1_xml):
        # The paper's introduction: in this context a human reads
        # "Kelly" as Grace Kelly.  The extension-enabled hybrid agrees.
        xsdf = XSDF(lexicon, XSDFConfig(
            sphere_radius=2, strip_target_dimension=True,
        ))
        result = xsdf.disambiguate_document(figure1_xml)
        picks = {a.label: a.concept_id for a in result.assignments}
        assert picks["kelly"] == "kelly.n.01"
        assert picks["star"] == "star.n.02"
        assert picks["cast"] == "cast.n.01"

    def test_all_approaches_run(self, lexicon, figure1_xml):
        for approach in DisambiguationApproach:
            xsdf = XSDF(lexicon, XSDFConfig(approach=approach))
            result = xsdf.disambiguate_document(figure1_xml)
            assert result.assignments

    def test_scores_populated_per_approach(self, lexicon, figure1_xml):
        xsdf = XSDF(lexicon, XSDFConfig(
            approach=DisambiguationApproach.CONCEPT_BASED
        ))
        result = xsdf.disambiguate_document(figure1_xml)
        assignment = result.assignments[0]
        assert assignment.score == assignment.concept_score
        assert assignment.context_score == 0.0

    def test_threshold_reduces_targets(self, lexicon, figure1_xml):
        base = XSDF(lexicon, XSDFConfig(ambiguity_threshold=0.0))
        strict = XSDF(lexicon, XSDFConfig(ambiguity_threshold=0.05))
        all_targets = base.disambiguate_document(figure1_xml).n_targets
        few_targets = strict.disambiguate_document(figure1_xml).n_targets
        assert few_targets < all_targets

    def test_explicit_targets_override_selection(self, lexicon, figure1_xml):
        xsdf = XSDF(lexicon, XSDFConfig())
        tree = xsdf.build_tree(figure1_xml)
        star = tree.find("star")
        result = xsdf.disambiguate_tree(tree, targets=[star])
        assert result.n_targets == 1
        assert result.assignments[0].label == "star"

    def test_structure_only_mode(self, lexicon, figure1_xml):
        xsdf = XSDF(lexicon, XSDFConfig(include_values=False))
        tree = xsdf.build_tree(figure1_xml)
        assert all(node.label != "kelly" for node in tree)

    def test_compound_tags_resolved(self, lexicon):
        xml = ("<movies><movie><FirstName>Grace</FirstName>"
               "<LastName>Kelly</LastName></movie></movies>")
        xsdf = XSDF(lexicon, XSDFConfig())
        result = xsdf.disambiguate_document(xml)
        picks = {a.label: a.concept_id for a in result.assignments}
        assert picks["first name"] == "first_name.n.01"
        assert picks["last name"] == "last_name.n.01"


class TestResultTypes:
    def test_concept_map_and_lookup(self, lexicon, figure1_xml):
        xsdf = XSDF(lexicon, XSDFConfig())
        result = xsdf.disambiguate_document(figure1_xml)
        mapping = result.concept_map()
        first = result.assignments[0]
        assert mapping[first.node_index] == first.concept_id
        assert result.assignment_for(first.node_index) is first
        assert result.assignment_for(99999) is None

    def test_coverage(self, lexicon, figure1_xml):
        xsdf = XSDF(lexicon, XSDFConfig())
        result = xsdf.disambiguate_document(figure1_xml)
        assert 0.0 < result.coverage <= 1.0

    def test_margin(self, lexicon, figure1_xml):
        # prune=False keeps the full per-candidate score table; under
        # the default pruning, provably-losing candidates are omitted
        # from `scores` so margins are computed over a subset.
        xsdf = XSDF(lexicon, XSDFConfig(prune=False))
        result = xsdf.disambiguate_document(figure1_xml)
        ambiguous = [a for a in result.assignments if len(a.scores) > 1]
        assert ambiguous
        assert all(a.margin >= 0 for a in ambiguous)

    def test_pruned_scores_are_margin_safe(self, lexicon, figure1_xml):
        # With pruning on (default), the chosen sense and margin stay
        # well-defined: margin over the evaluated subset is an upper
        # bound on the exhaustive margin, and never negative.
        result = XSDF(lexicon, XSDFConfig()).disambiguate_document(
            figure1_xml
        )
        assert result.assignments
        assert all(a.margin >= 0 for a in result.assignments)
        assert all(a.chosen in a.scores for a in result.assignments)


class TestSemanticOutput:
    def test_semantic_xml_well_formed_and_annotated(self, lexicon, figure1_xml):
        xsdf = XSDF(lexicon, XSDFConfig())
        output = xsdf.to_semantic_xml(figure1_xml)
        reparsed = parse(output)
        assert reparsed.root.name == "films"
        assert 'concept="' in output
        assert 'gloss="' in output
