"""Framework configuration variants, end to end."""

from __future__ import annotations

import pytest

from repro.core import (
    XSDF,
    DisambiguationApproach,
    XSDFConfig,
    enforce_one_sense_per_discourse,
)
from repro.similarity import SimilarityWeights


class TestVectorMeasureVariants:
    @pytest.mark.parametrize("measure", ["cosine", "jaccard", "pearson"])
    def test_context_based_runs_with_each_measure(
        self, lexicon, figure1_xml, measure
    ):
        xsdf = XSDF(lexicon, XSDFConfig(
            approach=DisambiguationApproach.CONTEXT_BASED,
            vector_measure=measure,
        ))
        result = xsdf.disambiguate_document(figure1_xml)
        assert result.assignments
        assert all(0.0 <= a.score <= 1.0 for a in result.assignments)

    def test_measures_can_disagree(self, lexicon, figure1_xml):
        picks = {}
        for measure in ("cosine", "jaccard"):
            xsdf = XSDF(lexicon, XSDFConfig(
                approach=DisambiguationApproach.CONTEXT_BASED,
                vector_measure=measure,
            ))
            result = xsdf.disambiguate_document(figure1_xml)
            picks[measure] = [a.score for a in result.assignments]
        # Identical choices are possible, identical scores are not.
        assert picks["cosine"] != picks["jaccard"]


class TestSimilarityWeightVariants:
    @pytest.mark.parametrize(
        "weights",
        [SimilarityWeights(1, 0, 0), SimilarityWeights(0, 1, 0),
         SimilarityWeights(0, 0, 1)],
    )
    def test_single_measure_configs_run(self, lexicon, figure1_xml, weights):
        xsdf = XSDF(lexicon, XSDFConfig(
            approach=DisambiguationApproach.CONCEPT_BASED,
            similarity_weights=weights,
        ))
        assert xsdf.disambiguate_document(figure1_xml).assignments

    def test_node_weight_zero_skips_ic_computation(self, lexicon):
        # No node-based weight: the framework must not need frequencies.
        config = XSDFConfig(similarity_weights=SimilarityWeights(1, 0, 1))
        xsdf = XSDF(lexicon, config)
        assert xsdf.disambiguate_document("<films><cast/></films>")


class TestApproachWeighting:
    def test_extreme_weights_recover_pure_approaches(self, lexicon, figure1_xml):
        concept_only = XSDF(lexicon, XSDFConfig(
            approach=DisambiguationApproach.COMBINED,
            concept_weight=1.0, context_weight=0.0,
        ))
        pure_concept = XSDF(lexicon, XSDFConfig(
            approach=DisambiguationApproach.CONCEPT_BASED,
        ))
        a = concept_only.disambiguate_document(figure1_xml)
        b = pure_concept.disambiguate_document(figure1_xml)
        assert [x.chosen for x in a.assignments] == \
            [y.chosen for y in b.assignments]

    def test_combined_scores_are_weighted_sum(self, lexicon, figure1_xml):
        xsdf = XSDF(lexicon, XSDFConfig(
            approach=DisambiguationApproach.COMBINED,
            concept_weight=0.25, context_weight=0.75,
        ))
        result = xsdf.disambiguate_document(figure1_xml)
        for assignment in result.assignments:
            expected = (0.25 * assignment.concept_score
                        + 0.75 * assignment.context_score)
            assert assignment.score == pytest.approx(expected)


class TestExtensionStacking:
    def test_all_extensions_together(self, lexicon, figure1_xml):
        """strip + distance policy + discourse post-processing compose."""
        from repro.core.distances import DensityWeightedDistance

        # prune=False: discourse voting needs the full per-candidate
        # score tables (see repro.core.discourse module docs).
        xsdf = XSDF(lexicon, XSDFConfig(
            sphere_radius=2,
            strip_target_dimension=True,
            distance_policy=DensityWeightedDistance(penalty=0.5),
            prune=False,
        ))
        result = xsdf.disambiguate_document(figure1_xml)
        fixed = enforce_one_sense_per_discourse(result)
        picks = {a.label: a.concept_id for a in fixed.assignments}
        assert picks["kelly"] == "kelly.n.01"
        assert picks["star"] == "star.n.02"

    def test_threshold_with_targets_and_discourse(self, lexicon, figure1_xml):
        xsdf = XSDF(lexicon, XSDFConfig(ambiguity_threshold=0.03))
        result = xsdf.disambiguate_document(figure1_xml)
        fixed = enforce_one_sense_per_discourse(result)
        assert len(fixed.assignments) == len(result.assignments)
        assert fixed.n_targets == result.n_targets
