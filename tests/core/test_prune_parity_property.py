"""Property-based exact-pruning parity on random synthetic networks.

The fixed-corpus parity suite (``tests/runtime/test_memo.py``) pins
exhaustive == pruned on the curated lexicon; these properties assert
the same contract where hypothesis chooses the semantic network shape,
the document shape, and the similarity measure — including the
totalized ``(score, sense-rank)`` tie-break, which synthetic networks
exercise heavily (structurally identical senses produce exact score
ties).  Every one of the eight measures runs mounted in its
:class:`CombinedSimilarity` slot, the configuration under which the
pruning upper bound engages.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import DisambiguationApproach, XSDFConfig
from repro.core.framework import XSDF
from repro.semnet.generator import GeneratorConfig, generate_network
from repro.semnet.ic import InformationContent
from repro.similarity.combined import CombinedSimilarity, SimilarityWeights
from repro.similarity.edge import LeacockChodorowSimilarity, PathSimilarity
from repro.similarity.node import JiangConrathSimilarity, ResnikSimilarity

#: (network, ic) per generator shape — hypothesis revisits shapes and
#: network construction dominates runtime.
_NETWORK_CACHE: dict[tuple, tuple] = {}

network_shapes = st.tuples(
    st.integers(min_value=0, max_value=499),     # generator seed
    st.sampled_from([40, 90]),                   # concepts
    st.sampled_from([2, 4]),                     # branching
    st.sampled_from([1.5, 3.0]),                 # mean polysemy
)


def _network_ic(shape):
    if shape not in _NETWORK_CACHE:
        if len(_NETWORK_CACHE) > 32:
            _NETWORK_CACHE.clear()
        seed, n_concepts, branching, polysemy = shape
        network = generate_network(GeneratorConfig(
            n_concepts=n_concepts,
            branching=branching,
            mean_polysemy=polysemy,
            seed=seed,
        ))
        _NETWORK_CACHE[shape] = (network, InformationContent(network))
    return _NETWORK_CACHE[shape]


def _random_document(network, seed: int) -> str:
    """A small random XML document over the network's vocabulary."""
    rng = random.Random(seed)
    words = sorted(network.words())

    def element(depth: int) -> str:
        tag = rng.choice(words)
        n_children = rng.randint(0, 3) if depth < 3 else 0
        body = "".join(element(depth + 1) for _ in range(n_children))
        if not body and rng.random() < 0.5:
            body = rng.choice(words)
        return f"<{tag}>{body}</{tag}>"

    root = rng.choice(words)
    body = "".join(element(1) for _ in range(rng.randint(2, 4)))
    return f"<{root}>{body}</{root}>"


def _measure_suite(network, ic):
    """All eight measures, each in its CombinedSimilarity slot."""
    edge_only = SimilarityWeights(1, 0, 0)
    node_only = SimilarityWeights(0, 1, 0)
    gloss_only = SimilarityWeights(0, 0, 1)
    return [
        ("wu-palmer", edge_only,
         CombinedSimilarity(network, weights=edge_only, ic=ic)),
        ("path", edge_only,
         CombinedSimilarity(network, weights=edge_only, ic=ic,
                            edge_measure=PathSimilarity(network))),
        ("leacock-chodorow", edge_only,
         CombinedSimilarity(
             network, weights=edge_only, ic=ic,
             edge_measure=LeacockChodorowSimilarity(network))),
        ("lin", node_only,
         CombinedSimilarity(network, weights=node_only, ic=ic)),
        ("resnik", node_only,
         CombinedSimilarity(network, weights=node_only, ic=ic,
                            node_measure=ResnikSimilarity(network, ic=ic))),
        ("jiang-conrath", node_only,
         CombinedSimilarity(
             network, weights=node_only, ic=ic,
             node_measure=JiangConrathSimilarity(network, ic=ic))),
        ("lesk", gloss_only,
         CombinedSimilarity(network, weights=gloss_only, ic=ic)),
        ("combined", SimilarityWeights(),
         CombinedSimilarity(network, ic=ic)),
    ]


class TestPrunedArgmaxProperty:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        shape=network_shapes,
        doc_seed=st.integers(0, 2**16),
        approach=st.sampled_from([
            DisambiguationApproach.CONCEPT_BASED,
            DisambiguationApproach.COMBINED,
        ]),
    )
    def test_pruned_argmax_equals_exhaustive(self, shape, doc_seed, approach):
        """Chosen sense, tie-break, and reported scores must ``==``."""
        network, ic = _network_ic(shape)
        xml = _random_document(network, doc_seed)
        for measure, weights, similarity in _measure_suite(network, ic):
            base_cfg = XSDFConfig(
                approach=approach, similarity_weights=weights,
                prune=False, memo=False,
            )
            fast_cfg = XSDFConfig(
                approach=approach, similarity_weights=weights,
                prune=True, memo=False,
            )
            expected = XSDF(
                network, base_cfg, similarity=similarity
            ).disambiguate_document(xml)
            pruned = XSDF(
                network, fast_cfg, similarity=similarity
            ).disambiguate_document(xml)
            assert len(expected.assignments) == len(pruned.assignments)
            for a, b in zip(expected.assignments, pruned.assignments):
                context = (
                    f"measure={measure} approach={approach.value} "
                    f"shape={shape} doc_seed={doc_seed} node={a.node_index}"
                )
                assert a.chosen == b.chosen, context
                assert a.score == b.score, context
                assert a.concept_score == b.concept_score, context
                assert a.context_score == b.context_score, context
                for candidate, score in b.scores.items():
                    assert a.scores[candidate] == score, context
