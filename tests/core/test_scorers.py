"""Unit tests for the concept-based and context-based scorers."""

from __future__ import annotations

import pytest

from repro.core.candidates import candidate_senses, context_sense_ids
from repro.core.concept_based import ConceptBasedScorer
from repro.core.context_based import ContextBasedScorer
from repro.core.sphere import build_sphere
from repro.semnet.builders import NetworkBuilder
from repro.semnet.concepts import Relation
from repro.xmltree.dom import XMLNode, XMLTree


@pytest.fixture()
def network():
    """Two senses of 'star' with clearly different neighborhoods."""
    b = NetworkBuilder()
    b.synset("entity", ["entity"], "a thing that exists", freq=1)
    b.synset("person", ["person"], "a human being",
             hypernym="entity", freq=20)
    b.synset("actor", ["actor"], "a performer in movies",
             hypernym="person", freq=10)
    b.synset("star.p", ["star"], "an actor with a principal role in movies",
             hypernym="actor", freq=5)
    b.synset("object", ["object"], "a physical thing",
             hypernym="entity", freq=15)
    b.synset("body", ["body"], "an object in space",
             hypernym="object", freq=5)
    b.synset("star.c", ["star"], "a glowing body of hot gas in space",
             hypernym="body", freq=8)
    b.synset("cast", ["cast"], "the actors of a production as a group",
             hypernym="entity", freq=4)
    b.synset("movie", ["movie", "film"], "a story told by actors on screen",
             hypernym="entity", freq=9)
    b.relation("star.p", Relation.DERIVATION, "movie")
    b.relation("actor", Relation.MEMBER_HOLONYM, "cast")
    return b.build()


@pytest.fixture()
def tree():
    """movie -> cast -> {star, star}; movie -> body."""
    movie = XMLNode("movie")
    cast = movie.add_child(XMLNode("cast"))
    cast.add_child(XMLNode("star"))
    cast.add_child(XMLNode("star"))
    movie.add_child(XMLNode("body"))
    return XMLTree(movie)


class TestCandidates:
    def test_simple_label(self, network, tree):
        star = tree.find("star")
        assert candidate_senses(star, network) == [("star.p",), ("star.c",)]

    def test_unknown_label_no_candidates(self, network):
        root = XMLNode("zzz")
        node = root.add_child(XMLNode("qqq"))
        XMLTree(root)
        assert candidate_senses(node, network) == []

    def test_compound_cross_product(self, network):
        root = XMLNode("x")
        node = root.add_child(
            XMLNode("star cast", tokens=("star", "cast"))
        )
        XMLTree(root)
        candidates = candidate_senses(node, network)
        assert set(candidates) == {
            ("star.p", "cast"), ("star.c", "cast"),
        }

    def test_compound_one_known_token(self, network):
        root = XMLNode("x")
        node = root.add_child(XMLNode("star zz", tokens=("star", "zz")))
        XMLTree(root)
        assert candidate_senses(node, network) == [("star.p",), ("star.c",)]

    def test_context_sense_ids_for_compound(self, network):
        root = XMLNode("x")
        node = root.add_child(XMLNode("star cast", tokens=("star", "cast")))
        XMLTree(root)
        assert set(context_sense_ids(node, network)) == {
            "star.p", "star.c", "cast",
        }


class TestConceptBasedScorer:
    def test_movie_context_prefers_performer_sense(self, network, tree):
        from repro.similarity.combined import CombinedSimilarity

        scorer = ConceptBasedScorer(network, CombinedSimilarity(network))
        star = tree.find("star")
        sphere = build_sphere(tree, star, 2)
        scores = scorer.score_all([("star.p",), ("star.c",)], sphere)
        assert scores[("star.p",)] > scores[("star.c",)]

    def test_scores_bounded(self, network, tree):
        from repro.similarity.combined import CombinedSimilarity

        scorer = ConceptBasedScorer(network, CombinedSimilarity(network))
        for node in tree:
            candidates = candidate_senses(node, network)
            if not candidates:
                continue
            sphere = build_sphere(tree, node, 2)
            for score in scorer.score_all(candidates, sphere).values():
                assert 0.0 <= score <= 1.0

    def test_score_matches_score_all(self, network, tree):
        from repro.similarity.combined import CombinedSimilarity

        scorer = ConceptBasedScorer(network, CombinedSimilarity(network))
        star = tree.find("star")
        sphere = build_sphere(tree, star, 1)
        single = scorer.score(("star.p",), sphere)
        batch = scorer.score_all([("star.p",)], sphere)
        assert single == pytest.approx(batch[("star.p",)])

    def test_compound_candidate_averages(self, network, tree):
        from repro.similarity.combined import CombinedSimilarity

        scorer = ConceptBasedScorer(network, CombinedSimilarity(network))
        sphere = build_sphere(tree, tree.find("star"), 1)
        pair_score = scorer.score(("star.p", "star.c"), sphere)
        single_scores = [
            scorer.score(("star.p",), sphere),
            scorer.score(("star.c",), sphere),
        ]
        # Eq. 10 averages the per-token similarities inside each
        # context-node max, so the pair can never beat the better
        # single candidate (but may fall below the weaker one when the
        # argmax context senses differ).
        assert 0.0 <= pair_score <= max(single_scores)


class TestContextBasedScorer:
    def test_scores_bounded(self, network, tree):
        scorer = ContextBasedScorer(network, radius=2)
        star = tree.find("star")
        sphere = build_sphere(tree, star, 2)
        scores = scorer.score_all([("star.p",), ("star.c",)], sphere)
        assert all(0.0 <= s <= 1.0 for s in scores.values())

    def test_stripping_prefers_context_supported_sense(self, network, tree):
        plain = ContextBasedScorer(network, radius=2)
        stripped = ContextBasedScorer(
            network, radius=2, strip_target_dimension=True
        )
        star = tree.find("star")
        sphere = build_sphere(tree, star, 2)
        s_plain = plain.score_all([("star.p",), ("star.c",)], sphere)
        s_stripped = stripped.score_all([("star.p",), ("star.c",)], sphere)
        # With the self-dimension removed the performer sense (whose
        # neighborhood mentions cast/actor/movie words) must win.
        assert s_stripped[("star.p",)] > s_stripped[("star.c",)]
        # And the stripped margin is at least as discriminative.
        margin_plain = s_plain[("star.p",)] - s_plain[("star.c",)]
        margin_stripped = s_stripped[("star.p",)] - s_stripped[("star.c",)]
        assert margin_stripped >= margin_plain

    def test_vector_cache_reused(self, network, tree):
        scorer = ContextBasedScorer(network, radius=2)
        sphere = build_sphere(tree, tree.find("star"), 2)
        scorer.score(("star.p",), sphere)
        first = scorer._vector_cache[("star.p",)]
        scorer.score(("star.p",), sphere)
        assert scorer._vector_cache[("star.p",)] is first

    def test_unknown_measure_rejected(self, network):
        with pytest.raises(ValueError):
            ContextBasedScorer(network, radius=2, vector_measure="manhattan")

    def test_alternative_measures_work(self, network, tree):
        for measure in ("jaccard", "pearson"):
            scorer = ContextBasedScorer(network, 2, vector_measure=measure)
            sphere = build_sphere(tree, tree.find("star"), 2)
            scores = scorer.score_all([("star.p",), ("star.c",)], sphere)
            assert all(0.0 <= s <= 1.0 for s in scores.values())
