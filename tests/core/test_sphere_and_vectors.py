"""Tests for sphere neighborhoods and context vectors against the
paper's worked examples (Figures 6 and 7)."""

from __future__ import annotations

import pytest

from repro.core.context_vector import (
    compound_concept_context_vector,
    concept_context_vector,
    context_vector,
    label_frequencies,
    node_context_vector,
    struct_proximity,
)
from repro.core.sphere import build_ring, build_sphere
from repro.semnet.builders import NetworkBuilder


class TestFigure6Spheres:
    def test_ring1_of_cast(self, figure6_tree):
        # Paper: R_1(T[2]) = {picture, star, star}.
        ring = build_ring(figure6_tree, figure6_tree[2], 1)
        assert sorted(n.label for n in ring) == ["picture", "star", "star"]

    def test_ring2_of_cast(self, figure6_tree):
        # Paper: R_2(T[2]) = {films, stewart, kelly, plot}.
        ring = build_ring(figure6_tree, figure6_tree[2], 2)
        assert sorted(n.label for n in ring) == [
            "films", "kelly", "plot", "stewart",
        ]

    def test_sphere2_is_union_of_rings(self, figure6_tree):
        sphere = build_sphere(figure6_tree, figure6_tree[2], 2)
        assert len(sphere) == 1 + 3 + 4  # center + ring1 + ring2
        assert sphere.ring(0) == [figure6_tree[2]]

    def test_sphere_members_sorted_by_distance_then_preorder(self, figure6_tree):
        sphere = build_sphere(figure6_tree, figure6_tree[2], 2)
        distances = [m.distance for m in sphere]
        assert distances == sorted(distances)

    def test_radius_zero_is_center_only(self, figure6_tree):
        sphere = build_sphere(figure6_tree, figure6_tree[2], 0)
        assert [m.node.index for m in sphere] == [2]

    def test_radius_covers_whole_tree(self, figure6_tree):
        sphere = build_sphere(figure6_tree, figure6_tree[2], 10)
        assert len(sphere) == len(figure6_tree)

    def test_negative_radius_rejected(self, figure6_tree):
        with pytest.raises(ValueError):
            build_sphere(figure6_tree, figure6_tree[2], -1)

    def test_labels_deduplicated(self, figure6_tree):
        sphere = build_sphere(figure6_tree, figure6_tree[2], 1)
        assert sphere.labels() == ["cast", "picture", "star"]


class TestStructProximity:
    def test_center_weight_is_one(self):
        assert struct_proximity(0, 2) == 1.0

    def test_outermost_ring_nonzero(self):
        # Definition 7: the farthest ring keeps weight 1/(d+1).
        assert struct_proximity(3, 3) == pytest.approx(1 / 4)

    def test_monotone_decreasing(self):
        weights = [struct_proximity(d, 3) for d in range(4)]
        assert weights == sorted(weights, reverse=True)


class TestFigure7Vectors:
    def test_v1_weights_match_paper(self, figure6_tree):
        # Paper Figure 7: V_1(T[2]) = (cast 0.4, picture 0.2, star 0.4).
        vector = node_context_vector(figure6_tree, figure6_tree[2], 1)
        assert vector == pytest.approx(
            {"cast": 0.4, "picture": 0.2, "star": 0.4}
        )

    def test_v2_ratios_match_paper(self, figure6_tree):
        # The paper's V_2 row is internally inconsistent about |S| (see
        # DESIGN.md); the *ratios* are normalization-independent and
        # must match: star = 2x films, cast = 3x films, picture = 2x films.
        vector = node_context_vector(figure6_tree, figure6_tree[2], 2)
        assert vector["star"] / vector["films"] == pytest.approx(4.0)
        assert vector["cast"] / vector["films"] == pytest.approx(3.0)
        assert vector["picture"] / vector["films"] == pytest.approx(2.0)
        assert vector["kelly"] == vector["stewart"] == vector["plot"] \
            == vector["films"]

    def test_assumption5_closer_weighs_more(self, figure6_tree):
        vector = node_context_vector(figure6_tree, figure6_tree[2], 2)
        assert vector["picture"] > vector["films"]

    def test_assumption6_repetition_weighs_more(self, figure6_tree):
        vector = node_context_vector(figure6_tree, figure6_tree[2], 1)
        assert vector["star"] == pytest.approx(2 * vector["picture"])

    def test_weights_in_unit_interval(self, figure6_tree):
        for node in figure6_tree:
            vector = node_context_vector(figure6_tree, node, 3)
            assert all(0.0 < w <= 1.0 for w in vector.values())

    def test_frequencies_sum_over_members(self, figure6_tree):
        sphere = build_sphere(figure6_tree, figure6_tree[2], 2)
        frequencies = label_frequencies(sphere)
        total = sum(frequencies.values())
        expected = sum(
            struct_proximity(m.distance, 2) for m in sphere
        )
        assert total == pytest.approx(expected)

    def test_context_vector_normalizer(self, figure6_tree):
        sphere = build_sphere(figure6_tree, figure6_tree[2], 1)
        vector = context_vector(sphere)
        frequencies = label_frequencies(sphere)
        for label, weight in vector.items():
            assert weight == pytest.approx(
                2 * frequencies[label] / (len(sphere) + 1)
            )


class TestConceptVectors:
    @pytest.fixture()
    def network(self):
        b = NetworkBuilder()
        b.synset("entity", ["entity"], "g")
        b.synset("person", ["person", "human"], "g", hypernym="entity")
        b.synset("actor", ["actor"], "g", hypernym="person")
        b.synset("prop", ["prop"], "g", part_of="actor")
        return b.build()

    def test_center_words_carry_full_weight(self, network):
        vector = concept_context_vector(network, "actor", 1)
        assert vector["actor"] == max(vector.values())

    def test_all_relation_types_traversed(self, network):
        vector = concept_context_vector(network, "actor", 1)
        assert "person" in vector and "prop" in vector

    def test_synonyms_all_become_dimensions(self, network):
        vector = concept_context_vector(network, "actor", 1)
        assert vector["person"] == vector["human"]

    def test_radius_extends_coverage(self, network):
        near = concept_context_vector(network, "actor", 1)
        far = concept_context_vector(network, "actor", 2)
        assert "entity" not in near
        assert "entity" in far

    def test_compound_vector_unions_spheres(self, network):
        compound = compound_concept_context_vector(
            network, ("prop", "entity"), 1
        )
        assert "actor" in compound      # from prop's sphere
        assert "person" in compound     # from entity's sphere

    def test_compound_keeps_minimal_distance(self, network):
        single = concept_context_vector(network, "actor", 1)
        compound = compound_concept_context_vector(
            network, ("actor", "prop"), 1
        )
        # actor appears at distance 0 in one sphere, 1 in the other; the
        # union takes distance 0, so the raw Struct weight matches the
        # single sphere's center weight before normalization.
        assert compound["actor"] > 0
        assert single["actor"] > 0
