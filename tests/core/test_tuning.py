"""Unit tests for the parameter-tuning extension."""

from __future__ import annotations

import pytest

from repro.core.config import DisambiguationApproach
from repro.core.tuning import ParameterGrid, TuningResult, tune
from repro.datasets import generate_test_corpus


@pytest.fixture(scope="module")
def dev_docs():
    corpus = generate_test_corpus()
    return corpus.by_dataset("imdb_movies")[:2]


class TestParameterGrid:
    def test_size(self):
        grid = ParameterGrid(sphere_radius=(1, 2), approach=("concept",))
        assert len(grid) == 2
        assert len(list(grid.configurations())) == 2

    def test_configurations_deterministic(self):
        grid = ParameterGrid(sphere_radius=(1, 2), approach=("concept", "combined"))
        first = [c.sphere_radius for c in grid.configurations()]
        second = [c.sphere_radius for c in grid.configurations()]
        assert first == second

    def test_approach_mapping(self):
        grid = ParameterGrid(sphere_radius=(1,), approach=("context",))
        config = next(grid.configurations())
        assert config.approach is DisambiguationApproach.CONTEXT_BASED

    def test_extension_axis(self):
        grid = ParameterGrid(
            sphere_radius=(1,), approach=("combined",),
            strip_target_dimension=(False, True),
        )
        flags = [c.strip_target_dimension for c in grid.configurations()]
        assert flags == [False, True]


class TestTune:
    def test_trials_sorted_best_first(self, lexicon, dev_docs):
        grid = ParameterGrid(sphere_radius=(1, 2), approach=("concept",))
        result = tune(lexicon, dev_docs, grid)
        values = [t.f_value for t in result.trials]
        assert values == sorted(values, reverse=True)
        assert result.best.f_value == values[0]

    def test_best_at_least_matches_every_trial(self, lexicon, dev_docs):
        grid = ParameterGrid(
            sphere_radius=(1, 2), approach=("concept", "combined")
        )
        result = tune(lexicon, dev_docs, grid)
        assert len(result.trials) == len(grid)
        assert all(result.best.f_value >= t.f_value for t in result.trials)

    def test_top_k(self, lexicon, dev_docs):
        grid = ParameterGrid(sphere_radius=(1, 2), approach=("concept",))
        result = tune(lexicon, dev_docs, grid)
        assert len(result.top(1)) == 1
        assert result.top(1)[0] is result.best

    def test_empty_result_best_raises(self):
        with pytest.raises(ValueError):
            TuningResult().best

    def test_deterministic(self, lexicon, dev_docs):
        grid = ParameterGrid(sphere_radius=(1, 2), approach=("concept",))
        a = tune(lexicon, dev_docs, grid)
        b = tune(lexicon, dev_docs, grid)
        assert [t.f_value for t in a.trials] == [t.f_value for t in b.trials]
        assert a.best.config == b.best.config
