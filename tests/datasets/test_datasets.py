"""Tests for the synthetic corpus generators and registry."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DATASETS,
    GROUPS,
    dataset,
    generate_test_corpus,
)
from repro.datasets.stats import (
    aggregate,
    compute_stats,
    dataset_stats,
    document_tree,
    group_struct_degrees,
)
from repro.xmltree.dtd import parse_dtd
from repro.xmltree.parser import parse


@pytest.fixture(scope="module")
def corpus():
    return generate_test_corpus()


class TestRegistry:
    def test_ten_datasets_four_groups(self):
        assert len(DATASETS) == 10
        assert set(GROUPS) == {1, 2, 3, 4}
        names = {spec.name for spec in DATASETS}
        assert names == {n for group in GROUPS.values() for n in group}

    def test_document_counts_match_table3(self):
        counts = {spec.name: spec.n_docs for spec in DATASETS}
        assert counts["shakespeare"] == 10
        assert counts["amazon_product"] == 10
        assert counts["niagara_bib"] == 8
        assert counts["sigmod_record"] == 6
        assert counts["cd_catalog"] == 4

    def test_lookup(self):
        assert dataset("shakespeare").group == 1
        with pytest.raises(KeyError):
            dataset("unknown")


class TestGeneration:
    def test_full_collection_size(self, corpus):
        assert len(corpus) == sum(spec.n_docs for spec in DATASETS)

    def test_determinism(self, corpus):
        again = generate_test_corpus()
        assert [d.xml for d in corpus] == [d.xml for d in again]

    def test_different_seed_changes_content(self, corpus):
        other = generate_test_corpus(seed=99)
        assert [d.xml for d in corpus] != [d.xml for d in other]

    def test_documents_distinct_within_dataset(self, corpus):
        for spec in DATASETS:
            docs = corpus.by_dataset(spec.name)
            assert len({d.xml for d in docs}) > 1, spec.name

    def test_every_document_well_formed(self, corpus):
        for doc in corpus:
            parse(doc.xml)

    def test_every_document_dtd_valid(self, corpus):
        for spec in DATASETS:
            dtd = parse_dtd(spec.dtd)
            for doc in corpus.by_dataset(spec.name):
                dtd.validate(parse(doc.xml).root)

    def test_group_assignment_consistent(self, corpus):
        for spec in DATASETS:
            for doc in corpus.by_dataset(spec.name):
                assert doc.group == spec.group

    def test_names_unique(self, corpus):
        names = [doc.name for doc in corpus]
        assert len(names) == len(set(names))


class TestGoldAnnotations:
    def test_gold_labels_occur_in_trees(self, corpus, lexicon):
        # Each dataset's gold map must be exercised by its documents:
        # every document contains at least a handful of gold labels,
        # and every gold label occurs somewhere in the dataset.
        for spec in DATASETS:
            seen: set[str] = set()
            for doc in corpus.by_dataset(spec.name):
                tree = document_tree(doc, lexicon)
                labels = {node.label for node in tree}
                covered = labels & set(doc.gold)
                assert len(covered) >= 5, (spec.name, doc.name)
                seen |= covered
            missing = set(spec.gold) - seen
            assert not missing, (spec.name, missing)

    def test_gold_senses_are_real_candidates(self, corpus, lexicon):
        from repro.core.candidates import candidate_senses

        for spec in DATASETS[:3]:
            doc = corpus.by_dataset(spec.name)[0]
            tree = document_tree(doc, lexicon)
            for node in tree:
                expected = doc.gold.get(node.label)
                if expected is None:
                    continue
                candidates = candidate_senses(node, lexicon)
                assert any(expected in c for c in candidates), node.label


class TestStatistics:
    def test_compute_stats_fields(self, corpus, lexicon):
        doc = corpus.by_group(1)[0]
        stats = compute_stats(document_tree(doc, lexicon), lexicon)
        assert stats.n_nodes > 100
        assert stats.max_depth >= stats.avg_depth
        assert stats.max_fan_out >= stats.avg_fan_out
        assert 0.0 <= stats.amb_degree <= 1.0
        assert 0.0 <= stats.struct_degree <= 1.0

    def test_aggregate_averages(self, corpus, lexicon):
        docs = corpus.by_dataset("cd_catalog")
        per_doc = [
            compute_stats(document_tree(d, lexicon), lexicon) for d in docs
        ]
        agg = aggregate(per_doc)
        assert min(s.avg_depth for s in per_doc) <= agg.avg_depth <= \
            max(s.avg_depth for s in per_doc)
        assert agg.max_polysemy == max(s.max_polysemy for s in per_doc)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_dataset_stats_covers_all(self, corpus, lexicon):
        stats = dataset_stats(corpus, lexicon)
        assert set(stats) == {spec.name for spec in DATASETS}

    def test_group_quadrants(self, corpus, lexicon):
        """The 2x2 ambiguity-structure design of Table 1."""
        from repro.datasets.stats import group_stats

        amb = {g: s.amb_degree for g, s in group_stats(corpus, lexicon).items()}
        struct = group_struct_degrees(corpus, lexicon)
        assert min(amb[1], amb[2]) > max(amb[3], amb[4])
        assert struct[1] > max(struct[2], struct[4])
        assert struct[3] > max(struct[2], struct[4])
