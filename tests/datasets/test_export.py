"""Tests for corpus export / import."""

from __future__ import annotations

import json

from repro.datasets import generate_test_corpus
from repro.datasets.export import export_corpus, load_exported_document
from repro.xmltree.parser import parse


class TestExport:
    def test_layout(self, tmp_path):
        manifest = export_corpus(tmp_path)
        assert (tmp_path / "MANIFEST.json").exists()
        assert len(manifest["datasets"]) == 10
        shakespeare = tmp_path / "shakespeare"
        assert (shakespeare / "shakespeare.dtd").exists()
        assert (shakespeare / "gold.json").exists()
        assert (shakespeare / "shakespeare-00.xml").exists()

    def test_documents_match_generator(self, tmp_path):
        export_corpus(tmp_path)
        corpus = generate_test_corpus()
        doc = corpus.by_dataset("cd_catalog")[0]
        on_disk = (tmp_path / "cd_catalog" / f"{doc.name}.xml").read_text()
        assert on_disk == doc.xml

    def test_manifest_counts(self, tmp_path):
        manifest = export_corpus(tmp_path)
        total = sum(len(d["documents"]) for d in manifest["datasets"])
        assert total == 60

    def test_gold_json_readable(self, tmp_path):
        export_corpus(tmp_path)
        gold = json.loads((tmp_path / "imdb_movies" / "gold.json").read_text())
        assert gold["movie"] == "movie.n.01"

    def test_export_is_idempotent(self, tmp_path):
        first = export_corpus(tmp_path)
        second = export_corpus(tmp_path)
        assert first == second

    def test_load_exported_document(self, tmp_path):
        export_corpus(tmp_path)
        xml_text, gold = load_exported_document(
            tmp_path / "food_menu" / "food_menu-00.xml"
        )
        parse(xml_text)
        assert gold["menu"] == "menu.n.01"


class TestResultExport:
    def test_result_to_dict_round_trips_json(self, lexicon, figure1_xml):
        from repro.core import XSDF, XSDFConfig

        xsdf = XSDF(lexicon, XSDFConfig(sphere_radius=1))
        result = xsdf.disambiguate_document(figure1_xml)
        document = result.to_dict()
        text = json.dumps(document)
        restored = json.loads(text)
        assert restored["n_targets"] == result.n_targets
        first = restored["assignments"][0]
        assert first["label"] == result.assignments[0].label
        assert first["chosen"] == list(result.assignments[0].chosen)
        assert first["scores"]  # per-candidate breakdown preserved
