"""Per-generator shape tests: each corpus looks like its grammar says."""

from __future__ import annotations

import pytest

from repro.datasets import dataset
from repro.xmltree.parser import parse


def docs(name, n=3):
    return [parse(d.xml) for d in dataset(name).documents()[:n]]


class TestShakespeare:
    def test_play_structure(self):
        for document in docs("shakespeare"):
            play = document.root
            assert play.name == "play"
            assert play.find("title") is not None
            assert play.find("personae") is not None
            acts = play.find_all("act")
            assert 3 <= len(acts) <= 4
            for act in acts:
                assert act.find_all("scene")

    def test_speeches_have_speakers_and_lines(self):
        for document in docs("shakespeare", 2):
            for scene in document.root.iter():
                if scene.name != "speech":
                    continue
                assert scene.find("speaker") is not None
                assert scene.find_all("line")

    def test_speakers_come_from_personae(self):
        for document in docs("shakespeare", 2):
            personae = {
                p.text() for p in document.root.find("personae").find_all("persona")
            }
            speakers = {
                e.text() for e in document.root.iter() if e.name == "speaker"
            }
            assert speakers <= personae


class TestAmazon:
    def test_flat_records(self):
        for document in docs("amazon_product"):
            for product in document.root.find_all("product"):
                names = [c.name for c in product.child_elements()]
                assert names == ["title", "brand", "line", "stock",
                                 "order", "price", "head", "state"]

    def test_values_plausible(self):
        for document in docs("amazon_product", 2):
            for product in document.root.find_all("product"):
                assert float(product.find("price").text()) > 0
                assert product.find("state").text() in (
                    "new", "used", "refurbished", "open box",
                )


class TestSigmod:
    def test_pages_monotone(self):
        for document in docs("sigmod_record"):
            last_end = 0
            for article in document.root.find_all("article"):
                first, last = article.find("page").text().split("-")
                assert int(first) > last_end
                last_end = int(last)

    def test_authors_structured(self):
        for document in docs("sigmod_record", 2):
            for article in document.root.find_all("article"):
                authors = article.find("authors").find_all("author")
                assert 1 <= len(authors) <= 3
                for author in authors:
                    assert author.find("first") is not None
                    assert author.find("last") is not None


class TestImdb:
    def test_movie_attributes_and_compounds(self):
        for document in docs("imdb_movies"):
            for movie in document.root.find_all("movie"):
                assert 1950 <= int(movie.attributes["year"]) <= 1965
                actors = movie.find("actors").find_all("actor")
                for actor in actors:
                    assert actor.find("FirstName") is not None
                    assert actor.find("LastName") is not None

    def test_cast_surnames_from_known_pool(self):
        gold = dataset("imdb_movies").gold
        # The cast pool mixes gold-annotated celebrity surnames with two
        # deliberately unknown ones (no lexicon entry, hence no gold).
        fillers = {"miller", "walker"}
        for document in docs("imdb_movies", 2):
            for element in document.root.iter():
                if element.name == "LastName":
                    surname = element.text().lower()
                    assert surname in gold or surname in fillers


class TestFlatCatalogs:
    @pytest.mark.parametrize(
        "name,record,fields",
        [
            ("cd_catalog", "cd",
             ["title", "artist", "country", "company", "price", "year"]),
            ("food_menu", "food",
             ["name", "price", "description", "calories"]),
            ("plant_catalog", "plant",
             ["common", "botanical", "zone", "light", "price",
              "availability"]),
        ],
    )
    def test_record_fields(self, name, record, fields):
        for document in docs(name):
            records = document.root.find_all(record)
            assert records
            for entry in records:
                assert [c.name for c in entry.child_elements()] == fields


class TestPersonnelAndClub:
    def test_personnel_addresses(self):
        for document in docs("niagara_personnel"):
            for person in document.root.find_all("person"):
                address = person.find("address")
                assert address.find("state") is not None
                assert len(address.find("zip").text()) == 5

    def test_club_member_ages(self):
        for document in docs("niagara_club"):
            for member in document.root.find_all("member"):
                assert 18 <= int(member.find("age").text()) <= 59
