"""Shared helpers for the reprolint test battery."""

from __future__ import annotations

import textwrap

import pytest

from repro.devtools import LintEngine, all_rules

#: Mini paper catalogue: enough DESIGN.md for the xref rule to engage.
MINI_DESIGN = textwrap.dedent(
    """\
    # Design notes

    **Definition 1** — semantic network.
    **Definition 2** — sense disambiguation.
    **Definition 3 - 5** — similarity measures.
    Eq. (10) scores a pair; Eq. (12) combines them.
    Prop. 1 shows monotonicity.
    """
)


@pytest.fixture()
def design_root(tmp_path):
    """A project root whose catalogue is :data:`MINI_DESIGN`."""
    (tmp_path / "DESIGN.md").write_text(MINI_DESIGN, encoding="utf-8")
    return tmp_path


@pytest.fixture()
def lint(tmp_path):
    """``lint(source, rules=[...], path=..., root=...) -> findings``.

    Sources are dedented so tests can indent fixture snippets naturally.
    The default root is an empty tmp dir (no catalogue — the xref rule
    stays inert unless a test passes ``root=design_root``).
    """

    def _lint(source, rules=None, path="src/repro/core/snippet.py",
              root=None):
        engine = LintEngine(
            all_rules(rules), project_root=root or tmp_path
        )
        return engine.lint_source(textwrap.dedent(source), path=path)

    return _lint
