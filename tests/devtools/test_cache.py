"""Incremental cache soundness and parallel-parse parity.

The contract under test: with a cache, editing one module re-analyzes
*exactly* that module plus its transitive importers, a warm no-change
run re-parses nothing, findings are identical with and without the
cache (and regardless of ``jobs``), and a signature change discards
the whole cache.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.devtools import AnalysisCache, LintEngine, all_rules


def _write_chain(tmp_path):
    """a <- b <- c import chain plus an independent d (with a finding)."""
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "a.py").write_text(textwrap.dedent(
        """\
        def helper(x):
            return x + 1
        """
    ), encoding="utf-8")
    (pkg / "b.py").write_text(textwrap.dedent(
        """\
        from repro.core.a import helper


        def twice(x):
            return helper(helper(x))
        """
    ), encoding="utf-8")
    (pkg / "c.py").write_text(textwrap.dedent(
        """\
        from repro.core.b import twice


        def quad(x):
            return twice(twice(x))
        """
    ), encoding="utf-8")
    (pkg / "d.py").write_text(textwrap.dedent(
        """\
        def shrug(x):
            try:
                return x.value
            except Exception:
                return None
        """
    ), encoding="utf-8")
    return pkg


def _engine(tmp_path, rules=("broad-except", "mutable-default")):
    return LintEngine(all_rules(list(rules)), project_root=tmp_path)


class TestCacheSoundness:
    def test_cold_run_analyzes_everything(self, tmp_path):
        pkg = _write_chain(tmp_path)
        cache = AnalysisCache(tmp_path / "cache.json")
        engine = _engine(tmp_path)
        findings = engine.lint_paths([pkg], cache=cache)
        assert len(engine.last_run.analyzed) == 4
        assert engine.last_run.reused == 0
        assert [f.rule for f in findings] == ["broad-except"]

    def test_warm_run_reuses_everything_and_parses_nothing(
        self, tmp_path, monkeypatch
    ):
        pkg = _write_chain(tmp_path)
        cache = AnalysisCache(tmp_path / "cache.json")
        cold = _engine(tmp_path).lint_paths([pkg], cache=cache)

        # The warm run must not even parse: a parse call is a bug.
        import repro.devtools.engine as engine_mod

        def _explode(item):
            raise AssertionError(f"warm run parsed {item[0]}")

        monkeypatch.setattr(engine_mod, "parse_payload", _explode)
        engine = _engine(tmp_path)
        warm = engine.lint_paths([pkg], cache=cache)
        assert engine.last_run.analyzed == []
        assert engine.last_run.reused == 4
        assert warm == cold

    def test_editing_one_module_dirties_exactly_its_importers(
        self, tmp_path
    ):
        pkg = _write_chain(tmp_path)
        cache = AnalysisCache(tmp_path / "cache.json")
        _engine(tmp_path).lint_paths([pkg], cache=cache)

        # Edit a.py: b and c import it (transitively), d does not.
        (pkg / "a.py").write_text(textwrap.dedent(
            """\
            def helper(x):
                return x + 2
            """
        ), encoding="utf-8")
        engine = _engine(tmp_path)
        engine.lint_paths([pkg], cache=cache)
        analyzed = {p.rsplit("/", 1)[-1] for p in engine.last_run.analyzed}
        assert analyzed == {"a.py", "b.py", "c.py"}
        assert engine.last_run.reused == 1

    def test_editing_a_leaf_dirties_only_itself(self, tmp_path):
        pkg = _write_chain(tmp_path)
        cache = AnalysisCache(tmp_path / "cache.json")
        _engine(tmp_path).lint_paths([pkg], cache=cache)

        (pkg / "c.py").write_text(
            (pkg / "c.py").read_text(encoding="utf-8") + "\n\nX = 1\n",
            encoding="utf-8",
        )
        engine = _engine(tmp_path)
        engine.lint_paths([pkg], cache=cache)
        analyzed = {p.rsplit("/", 1)[-1] for p in engine.last_run.analyzed}
        assert analyzed == {"c.py"}
        assert engine.last_run.reused == 3

    def test_cached_findings_survive_the_round_trip(self, tmp_path):
        pkg = _write_chain(tmp_path)
        cache = AnalysisCache(tmp_path / "cache.json")
        cold = _engine(tmp_path).lint_paths([pkg], cache=cache)
        (pkg / "a.py").write_text("Y = 2\n", encoding="utf-8")
        warm = _engine(tmp_path).lint_paths([pkg], cache=cache)
        # d.py's broad-except finding comes out of the cache unchanged.
        assert [f.to_dict() for f in warm] == [f.to_dict() for f in cold]

    def test_rule_set_change_discards_the_cache(self, tmp_path):
        pkg = _write_chain(tmp_path)
        cache = AnalysisCache(tmp_path / "cache.json")
        _engine(tmp_path).lint_paths([pkg], cache=cache)
        engine = _engine(tmp_path, rules=("broad-except",))
        engine.lint_paths([pkg], cache=cache)
        assert len(engine.last_run.analyzed) == 4
        assert engine.last_run.reused == 0

    def test_corrupt_cache_is_a_cold_run_not_a_crash(self, tmp_path):
        pkg = _write_chain(tmp_path)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json", encoding="utf-8")
        engine = _engine(tmp_path)
        findings = engine.lint_paths([pkg], cache=AnalysisCache(cache_path))
        assert len(engine.last_run.analyzed) == 4
        assert [f.rule for f in findings] == ["broad-except"]
        # And the run repaired the file.
        assert json.loads(cache_path.read_text(encoding="utf-8"))["version"]


class TestChangedMode:
    def test_changed_restricts_to_the_importer_closure(self, tmp_path):
        pkg = _write_chain(tmp_path)
        cache = AnalysisCache(tmp_path / "cache.json")
        _engine(tmp_path).lint_paths([pkg], cache=cache)
        engine = _engine(tmp_path)
        engine.lint_paths([pkg], cache=cache, changed=[pkg / "a.py"])
        analyzed = {p.rsplit("/", 1)[-1] for p in engine.last_run.analyzed}
        assert analyzed == {"a.py", "b.py", "c.py"}

    def test_changed_without_cache_skips_clean_unrelated_files(
        self, tmp_path
    ):
        pkg = _write_chain(tmp_path)
        engine = _engine(tmp_path)
        findings = engine.lint_paths([pkg], changed=[pkg / "a.py"])
        analyzed = {p.rsplit("/", 1)[-1] for p in engine.last_run.analyzed}
        assert analyzed == {"a.py", "b.py", "c.py"}
        # d.py (with its finding) is out of scope for this run.
        assert findings == []


class TestJobsParity:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_findings_identical_across_job_counts(self, tmp_path, jobs):
        pkg = _write_chain(tmp_path)
        serial = _engine(tmp_path).lint_paths([pkg], jobs=1)
        parallel = _engine(tmp_path).lint_paths([pkg], jobs=jobs)
        assert [f.to_dict() for f in parallel] == \
            [f.to_dict() for f in serial]

    def test_parallel_parse_with_project_rules(self, tmp_path):
        pkg = _write_chain(tmp_path)
        rules = ("exception-flow", "worker-boundary", "broad-except")
        serial = _engine(tmp_path, rules=rules).lint_paths([pkg], jobs=1)
        parallel = _engine(tmp_path, rules=rules).lint_paths([pkg], jobs=2)
        assert [f.to_dict() for f in parallel] == \
            [f.to_dict() for f in serial]
