"""The ``repro lint`` subcommand: exit codes, formats, scratch files."""

# The scratch-file fixtures deliberately cite nonexistent definitions.
# lint: disable-file=definition-xref

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools import RULE_CLASSES

from .conftest import MINI_DESIGN


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture()
def scratch_root(tmp_path):
    """A throwaway project with a catalogue, for scratch-file linting."""
    (tmp_path / "DESIGN.md").write_text(MINI_DESIGN, encoding="utf-8")
    return tmp_path


def write_scratch(root, source, name="scratch.py"):
    path = root / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return str(path)


class TestLintExitCodes:
    def test_clean_file_exits_zero(self, scratch_root):
        path = write_scratch(scratch_root, "X = 1\n")
        code, output = run(["lint", path])
        assert code == 0
        assert "clean (0 findings)" in output

    def test_broken_index_guard_fails_with_rule_and_location(
        self, scratch_root
    ):
        path = write_scratch(
            scratch_root,
            """\
            def depth(concept, index=None):
                return index.depth(concept)
            """,
        )
        code, output = run(["lint", path])
        assert code == 1
        assert "[index-parity]" in output
        assert f"{path}:2:" in output

    def test_nonexistent_definition_fails_with_rule_and_location(
        self, scratch_root
    ):
        path = write_scratch(
            scratch_root,
            '''\
            def combine(a: float, b: float) -> float:
                """Implements Definition 99."""
                return a + b
            ''',
        )
        code, output = run(["lint", path])
        assert code == 1
        assert "[definition-xref]" in output
        assert f"{path}:2:" in output

    def test_missing_path_errors_loudly(self, tmp_path):
        with pytest.raises(SystemExit, match="no such file"):
            run(["lint", str(tmp_path / "nowhere.py")])


class TestLintOptions:
    def test_json_format_parses_and_carries_findings(self, scratch_root):
        path = write_scratch(
            scratch_root,
            """\
            def f(acc=[]):
                pass
            """,
        )
        code, output = run(["lint", path, "--format", "json"])
        assert code == 1
        payload = json.loads(output)
        assert payload["count"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "mutable-default"
        assert finding["path"] == path
        assert finding["line"] == 1

    def test_rules_filter_limits_the_rule_set(self, scratch_root):
        path = write_scratch(
            scratch_root,
            """\
            try:
                pass
            except Exception:
                pass
            """,
        )
        code, output = run(["lint", path, "--rules", "mutable-default"])
        assert code == 0
        assert "clean" in output
        code, output = run(["lint", path, "--rules", "broad-except"])
        assert code == 1
        assert "[broad-except]" in output

    def test_unknown_rule_filter_errors_loudly(self, scratch_root):
        path = write_scratch(scratch_root, "X = 1\n")
        with pytest.raises(SystemExit, match="unknown rule IDs"):
            run(["lint", path, "--rules", "no-such-rule"])

    def test_list_rules_names_every_registered_rule(self):
        code, output = run(["lint", "--list-rules"])
        assert code == 0
        for rule_id in RULE_CLASSES:
            assert rule_id in output

    def test_directory_argument_recurses(self, scratch_root):
        pkg = scratch_root / "pkg"
        pkg.mkdir()
        write_scratch(pkg, "def f(acc=[]):\n    pass\n", name="a.py")
        write_scratch(pkg, "X = 1\n", name="b.py")
        code, output = run(["lint", str(pkg)])
        assert code == 1
        assert "[mutable-default]" in output
        assert "1 finding in 1 file" in output


class TestMergedTreeContract:
    def test_src_and_tests_lint_clean(self):
        """The merge gate: the shipped tree has zero findings."""
        if not (Path("src").is_dir() and Path("tests").is_dir()):
            pytest.skip("not running from the repository root")
        code, output = run(["lint", "src", "tests", "--format", "json"])
        assert code == 0, output
        assert json.loads(output) == {"count": 0, "findings": []}


class TestLintV2Flags:
    """The v2 plumbing: SARIF, --out, baselines, cache and --changed."""

    BROKEN = """\
        try:
            pass
        except Exception:
            pass
        """

    def test_sarif_format(self, scratch_root):
        path = write_scratch(scratch_root, self.BROKEN)
        code, output = run(["lint", path, "--format", "sarif"])
        assert code == 1
        document = json.loads(output)
        assert document["version"] == "2.1.0"
        result = document["runs"][0]["results"][0]
        assert result["ruleId"] == "broad-except"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 3
        assert region["startColumn"] == 1  # SARIF columns are 1-based

    def test_out_writes_report_to_file(self, scratch_root):
        path = write_scratch(scratch_root, self.BROKEN)
        report = scratch_root / "lint.sarif"
        code, output = run([
            "lint", path, "--format", "sarif", "--out", str(report),
        ])
        assert code == 1
        assert "written to" in output
        assert json.loads(report.read_text(encoding="utf-8"))["runs"]

    def test_write_then_apply_baseline(self, scratch_root):
        path = write_scratch(scratch_root, self.BROKEN)
        baseline = scratch_root / "lint-baseline.json"
        code, output = run([
            "lint", path, "--write-baseline", str(baseline),
        ])
        assert code == 0
        assert "1 finding" in output

        # With the baseline the same debt passes ...
        code, output = run(["lint", path, "--baseline", str(baseline)])
        assert code == 0
        assert "clean (0 findings)" in output

        # ... but a new violation still fails.
        path2 = write_scratch(scratch_root, self.BROKEN, name="fresh.py")
        code, output = run([
            "lint", path, path2, "--baseline", str(baseline),
        ])
        assert code == 1
        assert "fresh.py" in output

    def test_malformed_baseline_is_a_hard_error(self, scratch_root):
        path = write_scratch(scratch_root, "X = 1\n")
        bad = scratch_root / "bad.json"
        bad.write_text("[]", encoding="utf-8")
        with pytest.raises(SystemExit):
            run(["lint", path, "--baseline", str(bad)])

    def test_cache_round_trip_through_the_cli(self, scratch_root):
        path = write_scratch(scratch_root, self.BROKEN)
        cache = scratch_root / "cache.json"
        code1, out1 = run(["lint", path, "--cache", str(cache)])
        code2, out2 = run(["lint", path, "--cache", str(cache)])
        assert (code1, out1) == (code2, out2) == (1, out1)
        assert cache.is_file()

    def test_jobs_flag_matches_serial_output(self, scratch_root):
        path = write_scratch(scratch_root, self.BROKEN)
        _, serial = run(["lint", path, "--format", "json"])
        _, parallel = run(["lint", path, "--format", "json", "--jobs", "2"])
        assert parallel == serial
