"""Engine mechanics: dispatch, scoping, error handling, path expansion."""

from __future__ import annotations

import pytest

from repro.devtools import (
    LintEngine,
    Rule,
    all_rules,
    expand_paths,
    find_project_root,
)


class TestEngineConstruction:
    def test_duplicate_rule_ids_rejected(self):
        rules = all_rules(["broad-except"]) + all_rules(["broad-except"])
        with pytest.raises(ValueError, match="duplicate rule IDs"):
            LintEngine(rules)

    def test_reserved_pragma_id_rejected(self):
        class Impostor(Rule):
            id = "pragma"
            description = "tries to squat the reserved ID"

        with pytest.raises(ValueError, match="reserved"):
            LintEngine([Impostor()])

    def test_unknown_rule_selection_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown rule IDs: nope"):
            all_rules(["nope"])


class TestLintSource:
    def test_syntax_error_becomes_parse_error_finding(self, lint):
        (finding,) = lint("def broken(:\n    pass\n")
        assert finding.rule == "parse-error"
        assert finding.line == 1
        assert "cannot parse" in finding.message

    def test_findings_are_sorted_by_position(self, lint):
        findings = lint(
            """\
            def f(b={}):
                try:
                    pass
                except Exception:
                    pass

            def g(a=[]):
                pass
            """,
            rules=["broad-except", "mutable-default"],
        )
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        assert [f.rule for f in findings] == [
            "mutable-default", "broad-except", "mutable-default",
        ]

    def test_scoped_rule_skips_out_of_scope_paths(self, lint):
        source = """\
        def f(tokens):
            tokens.append(1)
        """
        in_scope = lint(
            source, rules=["cache-purity"],
            path="src/repro/similarity/snippet.py",
        )
        out_of_scope = lint(
            source, rules=["cache-purity"],
            path="src/repro/xmltree/snippet.py",
        )
        assert [f.rule for f in in_scope] == ["cache-purity"]
        assert out_of_scope == []


class TestPathHandling:
    def test_expand_paths_recurses_and_dedups(self, tmp_path):
        pkg = tmp_path / "pkg"
        sub = pkg / "sub"
        sub.mkdir(parents=True)
        a = pkg / "a.py"
        b = sub / "b.py"
        a.write_text("x = 1\n")
        b.write_text("y = 2\n")
        (pkg / "notes.txt").write_text("not python\n")
        result = expand_paths([pkg, a])
        assert result == [a, b]

    def test_explicit_non_py_file_is_kept(self, tmp_path):
        scratch = tmp_path / "scratch.txt"
        scratch.write_text("def f():\n    pass\n")
        assert expand_paths([scratch]) == [scratch]

    def test_unreadable_file_is_a_finding_not_a_crash(self, tmp_path):
        engine = LintEngine(all_rules(), project_root=tmp_path)
        (finding,) = engine.lint_file(tmp_path / "missing.py")
        assert finding.rule == "parse-error"
        assert "cannot read" in finding.message

    def test_find_project_root_walks_up_to_catalogue(self, tmp_path):
        (tmp_path / "DESIGN.md").write_text("Definition 1\n")
        nested = tmp_path / "src" / "repro"
        nested.mkdir(parents=True)
        assert find_project_root(nested) == tmp_path

    def test_find_project_root_falls_back_to_start(self, tmp_path):
        bare = tmp_path / "bare"
        bare.mkdir()
        # tmp dirs sit under the real FS root; no DESIGN.md above them
        # is guaranteed, so only assert the call does not explode and
        # returns a directory.
        assert find_project_root(bare).is_dir()
