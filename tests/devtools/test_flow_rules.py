"""The v2 flow-rule families: fire + silent fixtures per rule.

Each family gets at least one *fire* fixture (the hazard, minimal) and
one *silent* fixture (the sanctioned shape of the same code), plus the
cross-module cases only the project model can see: exception-flow
through an imported helper, and the seeded-regression check that
deleting the envelope branch from a copy of ``repro/server/app.py``
produces a finding.
"""

from __future__ import annotations

import ast
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.devtools import LintEngine, all_rules


def _ids(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


# ---------------------------------------------------------------------------
# determinism-flow
# ---------------------------------------------------------------------------


class TestDeterminismFlow:
    def test_fires_on_float_accumulation_over_set_valued_name(self, lint):
        findings = lint(
            """\
            def total(xs):
                pool = set(xs)
                acc = 0.0
                for x in pool:
                    acc += x
                return acc
            """,
            rules=["determinism-flow"],
        )
        assert len(_ids(findings, "determinism-flow")) == 1
        assert "'pool'" in findings[0].message

    def test_fires_on_ordered_append_and_yield(self, lint):
        findings = lint(
            """\
            def records(xs):
                seen = {x for x in xs}
                out = []
                for x in seen:
                    out.append(x)
                return out


            def stream(xs):
                seen = frozenset(xs)
                for x in seen:
                    yield x
            """,
            rules=["determinism-flow"],
        )
        assert len(_ids(findings, "determinism-flow")) == 2

    def test_fires_on_list_and_tuple_materialization(self, lint):
        findings = lint(
            """\
            def memo_key(config_ids):
                ids = set(config_ids)
                return tuple(ids)


            def ordered(config_ids):
                ids = set(config_ids)
                return list(ids)
            """,
            rules=["determinism-flow"],
        )
        assert len(_ids(findings, "determinism-flow")) == 2

    def test_silent_when_sorted_first(self, lint):
        findings = lint(
            """\
            def total(xs):
                pool = set(xs)
                acc = 0.0
                for x in sorted(pool):
                    acc += x
                return acc


            def memo_key(config_ids):
                ids = set(config_ids)
                return tuple(sorted(ids))
            """,
            rules=["determinism-flow"],
        )
        assert findings == []

    def test_silent_without_an_order_sink(self, lint):
        findings = lint(
            """\
            def collect(xs):
                pool = set(xs)
                seen = set()
                for x in pool:
                    seen.add(x)
                return seen
            """,
            rules=["determinism-flow"],
        )
        assert findings == []

    def test_silent_outside_the_pipeline_scope(self, lint):
        findings = lint(
            """\
            def total(xs):
                pool = set(xs)
                acc = 0.0
                for x in pool:
                    acc += x
                return acc
            """,
            rules=["determinism-flow"],
            path="src/repro/server/snippet.py",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# worker-boundary
# ---------------------------------------------------------------------------


class TestWorkerBoundary:
    def test_fires_on_generator_crossing_the_boundary(self, lint):
        findings = lint(
            """\
            def run(pool, items):
                gen = (i * i for i in items)
                return pool.map(work, gen)
            """,
            rules=["worker-boundary"],
        )
        assert len(_ids(findings, "worker-boundary")) == 1
        assert "generator" in findings[0].message

    def test_fires_on_lambda_in_apply_args(self, lint):
        findings = lint(
            """\
            def run(pool, item):
                return pool.apply_async(work, (lambda x: x, item))
            """,
            rules=["worker-boundary"],
        )
        assert len(_ids(findings, "worker-boundary")) == 1
        assert "lambda" in findings[0].message

    def test_fires_on_open_file_handle_in_initargs(self, lint):
        findings = lint(
            """\
            def run(pool_cls, path):
                log = open(path, "a")
                pool = pool_cls(initializer=_init, initargs=(log,))
                return pool
            """,
            rules=["worker-boundary"],
        )
        assert len(_ids(findings, "worker-boundary")) == 1
        assert "open file handle" in findings[0].message

    def test_fires_when_worker_reads_parent_mutated_global(self, lint):
        findings = lint(
            """\
            _CACHE = {}


            def warm(key, value):
                _CACHE[key] = value


            def _work(item):
                return _CACHE.get(item, 0)


            def run(pool, items):
                return pool.map(_work, items)
            """,
            rules=["worker-boundary"],
        )
        assert len(_ids(findings, "worker-boundary")) == 1
        assert "_CACHE" in findings[0].message
        assert "fork-time snapshot" in findings[0].message

    def test_silent_on_the_sanctioned_initializer_pattern(self, lint):
        # The executor's shape: a None-initialized module global written
        # only via the pool initializer — nothing mutable crosses.
        findings = lint(
            """\
            _STATE = None


            def _init(config):
                global _STATE
                _STATE = config


            def _work(item):
                return _STATE is not None


            def run(pool, items):
                return pool.map(_work, items)
            """,
            rules=["worker-boundary"],
        )
        assert findings == []

    def test_silent_when_global_is_never_mutated(self, lint):
        findings = lint(
            """\
            _TABLE = {"a": 1}


            def _work(item):
                return _TABLE.get(item, 0)


            def run(pool, items):
                return pool.map(_work, items)
            """,
            rules=["worker-boundary"],
        )
        assert findings == []


# ---------------------------------------------------------------------------
# exception-flow
# ---------------------------------------------------------------------------

_RUNTIME = "src/repro/runtime/snippet.py"
_SERVER = "src/repro/server/snippet.py"


class TestExceptionFlow:
    def test_fires_when_typed_error_vanishes(self, lint):
        findings = lint(
            """\
            class PackError(Exception):
                pass


            def step(doc):
                try:
                    return doc.upper()
                except PackError:
                    return None
            """,
            rules=["exception-flow"],
            path=_RUNTIME,
        )
        assert len(_ids(findings, "exception-flow")) == 1
        assert "PackError" in findings[0].message

    def test_silent_when_handler_reraises_or_emits(self, lint):
        findings = lint(
            """\
            class PackError(Exception):
                pass


            def step_a(doc):
                try:
                    return doc.upper()
                except PackError:
                    raise


            def step_b(metrics, doc):
                try:
                    return doc.upper()
                except PackError:
                    metrics.count("pack_failed")
                    return None
            """,
            rules=["exception-flow"],
            path=_RUNTIME,
        )
        assert findings == []

    def test_silent_when_callee_reaches_the_sink(self, lint):
        # The call-graph upgrade: the handler body has no sink, but the
        # helper it delegates to emits the metrics signal.
        findings = lint(
            """\
            class PackError(Exception):
                pass


            def _note(metrics, doc):
                metrics.count("pack_failed")
                return None


            def step(metrics, doc):
                try:
                    return doc.upper()
                except PackError:
                    return _note(metrics, doc)
            """,
            rules=["exception-flow"],
            path=_RUNTIME,
        )
        assert findings == []

    def test_fires_when_callee_has_no_sink(self, lint):
        findings = lint(
            """\
            class PackError(Exception):
                pass


            def _swallow(doc):
                return None


            def step(doc):
                try:
                    return doc.upper()
                except PackError:
                    return _swallow(doc)
            """,
            rules=["exception-flow"],
            path=_RUNTIME,
        )
        assert len(_ids(findings, "exception-flow")) == 1

    def test_server_mode_requires_envelope_not_metrics(self, lint):
        findings = lint(
            """\
            class RouteError(Exception):
                pass


            def handle_a(metrics, request):
                try:
                    return request.route()
                except RouteError:
                    metrics.count("route_failed")
                    return None


            def handle_b(writer, request):
                try:
                    return request.route()
                except RouteError as exc:
                    return write_error_envelope(writer, exc)
            """,
            rules=["exception-flow"],
            path=_SERVER,
        )
        flagged = _ids(findings, "exception-flow")
        assert len(flagged) == 1
        assert flagged[0].line < 12  # handle_a's handler, not handle_b's

    def test_honors_legacy_silent_degrade_pragma(self, lint):
        findings = lint(
            """\
            class PackError(Exception):
                pass


            def step(doc):
                try:
                    return doc.upper()
                except PackError:  # lint: disable=silent-degrade
                    return None
            """,
            rules=["exception-flow"],
            path=_RUNTIME,
        )
        assert findings == []

    def test_cross_module_sink_through_the_import_graph(self, tmp_path):
        """The pair only the project model can judge: the sink lives in
        an imported module; with it the handler is clean, without it
        the handler fires."""
        pkg = tmp_path / "src" / "repro" / "server"
        pkg.mkdir(parents=True)
        handler_src = textwrap.dedent(
            """\
            from repro.server.fail import reject


            class EnvelopeError(Exception):
                pass


            def handle(writer, request):
                try:
                    return request.route()
                except EnvelopeError as exc:
                    return reject(writer, exc)
            """
        )
        sink_src = textwrap.dedent(
            """\
            def reject(writer, exc):
                return _send_envelope(writer, exc)


            def _send_envelope(writer, exc):
                writer.write(b"{}")
            """
        )
        no_sink_src = textwrap.dedent(
            """\
            def reject(writer, exc):
                return None
            """
        )
        (pkg / "handler.py").write_text(handler_src, encoding="utf-8")
        (pkg / "fail.py").write_text(sink_src, encoding="utf-8")
        engine = LintEngine(all_rules(["exception-flow"]),
                            project_root=tmp_path)
        clean = engine.lint_paths([pkg])
        assert _ids(clean, "exception-flow") == []

        (pkg / "fail.py").write_text(no_sink_src, encoding="utf-8")
        engine = LintEngine(all_rules(["exception-flow"]),
                            project_root=tmp_path)
        dirty = engine.lint_paths([pkg])
        flagged = _ids(dirty, "exception-flow")
        assert len(flagged) == 1
        assert flagged[0].path.endswith("handler.py")


REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSeededRegression:
    """Deleting the envelope branch from a copy of the real server must
    produce an exception-flow finding — the rule guards the tree it
    ships with, not just synthetic fixtures."""

    def _lint_copy(self, tmp_path, mutate):
        app_src = REPO_ROOT / "src" / "repro" / "server" / "app.py"
        target_dir = tmp_path / "src" / "repro" / "server"
        target_dir.mkdir(parents=True)
        target = target_dir / "app.py"
        shutil.copyfile(app_src, target)
        if mutate:
            self._delete_envelope_branch(target)
        engine = LintEngine(all_rules(["exception-flow"]),
                            project_root=tmp_path)
        return engine.lint_paths([target])

    def _delete_envelope_branch(self, target: Path) -> None:
        source = target.read_text(encoding="utf-8")
        tree = ast.parse(source)
        handler = next(
            node for node in ast.walk(tree)
            if isinstance(node, ast.ExceptHandler)
            and isinstance(node.type, ast.Name)
            and node.type.id == "EnvelopeError"
        )
        lines = source.splitlines(keepends=True)
        start = handler.body[0].lineno - 1
        end = handler.body[-1].end_lineno
        indent = lines[start][: len(lines[start]) - len(
            lines[start].lstrip())]
        lines[start:end] = [f"{indent}pass\n"]
        target.write_text("".join(lines), encoding="utf-8")

    def test_pristine_copy_is_clean(self, tmp_path):
        findings = self._lint_copy(tmp_path, mutate=False)
        assert _ids(findings, "exception-flow") == []

    def test_mutated_copy_fires(self, tmp_path):
        findings = self._lint_copy(tmp_path, mutate=True)
        flagged = _ids(findings, "exception-flow")
        assert len(flagged) >= 1
        assert "EnvelopeError" in flagged[0].message


# ---------------------------------------------------------------------------
# resource-lifecycle
# ---------------------------------------------------------------------------


class TestResourceLifecycle:
    def test_fires_on_leaked_file_handle(self, lint):
        findings = lint(
            """\
            def load(path):
                handle = open(path)
                data = handle.read()
                return data
            """,
            rules=["resource-lifecycle"],
        )
        assert len(_ids(findings, "resource-lifecycle")) == 1
        assert "'handle'" in findings[0].message

    def test_fires_on_leaked_pool(self, lint):
        findings = lint(
            """\
            def run(items):
                pool = Pool(processes=2)
                return pool.map(work, items)
            """,
            rules=["resource-lifecycle"],
        )
        assert len(_ids(findings, "resource-lifecycle")) == 1

    def test_fires_on_leaked_shared_memory(self, lint):
        findings = lint(
            """\
            def attach(name):
                shm = SharedMemory(name=name)
                return bytes(shm.buf)
            """,
            rules=["resource-lifecycle"],
        )
        assert len(_ids(findings, "resource-lifecycle")) == 1
        assert "'shm'" in findings[0].message

    def test_fires_on_leaked_mmap(self, lint):
        findings = lint(
            """\
            def attach(fh):
                mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
                return mapped[0:16]
            """,
            rules=["resource-lifecycle"],
        )
        assert len(_ids(findings, "resource-lifecycle")) == 1
        assert "'mapped'" in findings[0].message

    def test_silent_on_closed_mmap(self, lint):
        findings = lint(
            """\
            def attach(fh):
                mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
                try:
                    return bytes(mapped)
                finally:
                    mapped.close()
            """,
            rules=["resource-lifecycle"],
        )
        assert findings == []

    def test_silent_on_closed_shared_memory(self, lint):
        findings = lint(
            """\
            def attach(name):
                shm = SharedMemory(name=name)
                try:
                    return bytes(shm.buf)
                finally:
                    shm.close()
            """,
            rules=["resource-lifecycle"],
        )
        assert findings == []

    def test_silent_with_context_manager(self, lint):
        findings = lint(
            """\
            def load(path):
                handle = open(path)
                with handle:
                    return handle.read()


            def load_direct(path):
                with open(path) as handle:
                    return handle.read()
            """,
            rules=["resource-lifecycle"],
        )
        assert findings == []

    def test_silent_with_close_in_finally(self, lint):
        findings = lint(
            """\
            def run(items):
                pool = Pool(processes=2)
                try:
                    return pool.map(work, items)
                finally:
                    pool.terminate()
            """,
            rules=["resource-lifecycle"],
        )
        assert findings == []

    def test_silent_on_ownership_transfer(self, lint):
        findings = lint(
            """\
            def acquire(path):
                handle = open(path)
                return handle


            def register(stack, path):
                handle = open(path)
                return stack.enter_context(handle)


            class Holder:
                def attach(self, path):
                    handle = open(path)
                    self._handle = handle
            """,
            rules=["resource-lifecycle"],
        )
        assert findings == []

    def test_fires_on_leaked_journal_writer(self, lint):
        # The durability handle: an unbuffered journal fd left open
        # loses its final frames — the exact crash-window the WAL
        # exists to close.
        findings = lint(
            """\
            def record(path, records):
                journal = JournalWriter(path, meta={})
                for record in records:
                    journal.append(record, "digest")
            """,
            rules=["resource-lifecycle"],
        )
        assert len(_ids(findings, "resource-lifecycle")) == 1
        assert "'journal'" in findings[0].message

    def test_fires_on_leaked_scrub_thread(self, lint):
        findings = lint(
            """\
            def watch(targets):
                scrub = ShardScrubber(interval_s=0.1)
                scrub.start()
                worker = Thread(target=scrub.step)
                worker.start()
            """,
            rules=["resource-lifecycle"],
        )
        flagged = _ids(findings, "resource-lifecycle")
        assert len(flagged) == 2
        assert any("'scrub'" in f.message for f in flagged)
        assert any("'worker'" in f.message for f in flagged)

    def test_silent_on_closed_journal_and_stopped_scrubber(self, lint):
        findings = lint(
            """\
            def record(path, records):
                journal = JournalWriter(path, meta={})
                try:
                    for record in records:
                        journal.append(record, "digest")
                finally:
                    journal.close()


            def scrub_once(targets):
                scrub = ShardScrubber(interval_s=0.1)
                scrub.start()
                try:
                    return scrub.stats()
                finally:
                    scrub.stop()


            def run_joined(fn):
                worker = Thread(target=fn)
                worker.start()
                worker.join()


            class Supervisor:
                def start(self):
                    scrub = ShardScrubber()
                    self._scrubber = scrub
            """,
            rules=["resource-lifecycle"],
        )
        assert findings == []

    def test_silent_outside_src(self, lint):
        findings = lint(
            """\
            def load(path):
                handle = open(path)
                return handle.read()
            """,
            rules=["resource-lifecycle"],
            path="tests/test_snippet.py",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# migration guarantee: the merged tree stays clean under all 15 rules
# ---------------------------------------------------------------------------


class TestFlowRulesOnRealTree:
    @pytest.mark.parametrize("subtree", ["runtime", "server"])
    def test_real_subtree_is_clean_under_flow_rules(self, subtree):
        engine = LintEngine(
            all_rules(["determinism-flow", "worker-boundary",
                       "exception-flow", "resource-lifecycle"]),
            project_root=REPO_ROOT,
        )
        findings = engine.lint_paths([REPO_ROOT / "src" / "repro" / subtree])
        assert findings == []
