"""Golden-file tests: reporter output is byte-stable.

Every reporter's exact output for a fixed finding list is checked
against a file in ``tests/devtools/golden/`` — CI artifact diffs and
editor integrations both depend on the formats not drifting silently.
To regenerate after an *intentional* format change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \\
        tests/devtools/test_golden_reports.py

then review the golden diff like any other contract change.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.devtools import Finding
from repro.devtools.reporters import render_json, render_sarif, render_text

GOLDEN = Path(__file__).parent / "golden"


class _StubRule:
    """Fixed id/description so SARIF goldens don't churn when the real
    rule descriptions are reworded."""

    def __init__(self, rule_id: str, description: str):
        self.id = rule_id
        self.description = description


FINDINGS = [
    Finding(
        rule="broad-except",
        path="src/repro/core/framework.py",
        line=12,
        col=4,
        message="bare 'except:' swallows every error",
    ),
    Finding(
        rule="determinism-flow",
        path="src/repro/semnet/network.py",
        line=3,
        col=0,
        message="loop iterates set-valued name 'pool' and accumulates",
    ),
    Finding(
        rule="determinism-flow",
        path="src/repro/semnet/network.py",
        line=40,
        col=8,
        message="list() materializes the iteration order of 'ids'",
    ),
]

RULES = [
    _StubRule("broad-except", "no bare or broad excepts"),
    _StubRule("determinism-flow", "set order must not reach sinks"),
]


def _check(name: str, rendered: str) -> None:
    path = GOLDEN / name
    if os.environ.get("REGEN_GOLDEN"):
        path.parent.mkdir(exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
        pytest.skip(f"regenerated {path}")
    assert rendered == path.read_text(encoding="utf-8")


class TestGoldenReports:
    def test_text_report(self):
        _check("findings.txt", render_text(FINDINGS))

    def test_text_report_empty(self):
        _check("empty.txt", render_text([]))

    def test_json_report(self):
        _check("findings.json", render_json(FINDINGS))

    def test_json_report_empty(self):
        _check("empty.json", render_json([]))

    def test_sarif_report(self):
        _check("findings.sarif", render_sarif(FINDINGS, rules=RULES))

    def test_sarif_report_empty(self):
        _check("empty.sarif", render_sarif([], rules=RULES))

    def test_sarif_relativizes_uris_under_project_root(self, tmp_path):
        finding = Finding(
            rule="broad-except",
            path=str(tmp_path / "src" / "x.py"),
            line=1, col=0, message="m",
        )
        rendered = render_sarif([finding], project_root=tmp_path)
        assert '"uri": "src/x.py"' in rendered
