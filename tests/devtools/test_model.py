"""The project model substrate: names, imports, call graph, dataflow."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.devtools.dataflow import Definitions, is_set_valued
from repro.devtools.model import (
    ProjectModel,
    build_module,
    module_name_for_path,
    resolve_targets,
)


def _module(model_root, path, source):
    return build_module(path, textwrap.dedent(source), model_root)


def _model(tmp_path, **sources):
    """Build a model from ``{dotted_tail: source}`` under src/repro/."""
    model = ProjectModel(tmp_path)
    for tail, source in sources.items():
        path = str(tmp_path / "src" / "repro" /
                   Path(tail.replace(".", "/") + ".py"))
        model.add_module(_module(tmp_path, path, source))
    model.finalize()
    return model


class TestModuleNames:
    def test_src_prefix_is_dropped(self, tmp_path):
        path = tmp_path / "src" / "repro" / "runtime" / "pack.py"
        assert module_name_for_path(path, tmp_path) == "repro.runtime.pack"

    def test_package_init_collapses(self, tmp_path):
        path = tmp_path / "src" / "repro" / "server" / "__init__.py"
        assert module_name_for_path(path, tmp_path) == "repro.server"

    def test_outside_root_falls_back_to_stem(self, tmp_path):
        assert module_name_for_path("/elsewhere/scratch.py",
                                    tmp_path) == "scratch"


class TestImportGraph:
    def test_longest_prefix_resolution(self):
        known = {"repro.runtime", "repro.runtime.pack"}
        assert resolve_targets(["repro.runtime.pack.PackedIndex"],
                               known) == {"repro.runtime.pack"}
        assert resolve_targets(["repro.runtime.misc"],
                               known) == {"repro.runtime"}

    def test_transitive_closures(self, tmp_path):
        model = _model(
            tmp_path,
            **{
                "core.a": "A = 1\n",
                "core.b": "from repro.core.a import A\n",
                "core.c": "from repro.core.b import A\n",
                "core.d": "D = 4\n",
            },
        )
        importers = model.transitive_importers(["repro.core.a"])
        assert importers == {"repro.core.a", "repro.core.b", "repro.core.c"}
        imports = model.transitive_imports(["repro.core.c"])
        assert imports == {"repro.core.c", "repro.core.b", "repro.core.a"}

    def test_relative_imports_resolve(self, tmp_path):
        model = _model(
            tmp_path,
            **{
                "core.a": "A = 1\n",
                "core.b": "from .a import A\n",
            },
        )
        assert model.imports_of["repro.core.b"] == {"repro.core.a"}


class TestCallGraph:
    def test_resolves_module_functions_and_methods(self, tmp_path):
        model = _model(
            tmp_path,
            **{
                "core.a": """\
                def helper(x):
                    return x


                class Walker:
                    def step(self):
                        return self._inner()

                    def _inner(self):
                        return helper(1)
                """,
            },
        )
        graph = model.callgraph
        assert graph.callees("repro.core.a:Walker.step") == \
            frozenset({"repro.core.a:Walker._inner"})
        assert graph.callees("repro.core.a:Walker._inner") == \
            frozenset({"repro.core.a:helper"})
        assert "repro.core.a:helper" in \
            graph.reachable("repro.core.a:Walker.step")

    def test_resolves_cross_module_imports(self, tmp_path):
        model = _model(
            tmp_path,
            **{
                "core.a": """\
                def helper(x):
                    return x
                """,
                "core.b": """\
                from repro.core.a import helper


                def caller():
                    return helper(2)
                """,
            },
        )
        assert model.callgraph.callees("repro.core.b:caller") == \
            frozenset({"repro.core.a:helper"})

    def test_resolves_local_instance_methods(self, tmp_path):
        model = _model(
            tmp_path,
            **{
                "core.a": """\
                class Engine:
                    def run(self):
                        return 1


                def main():
                    engine = Engine()
                    return engine.run()
                """,
            },
        )
        assert "repro.core.a:Engine.run" in \
            model.callgraph.callees("repro.core.a:main")

    def test_base_class_method_lookup(self, tmp_path):
        model = _model(
            tmp_path,
            **{
                "core.base": """\
                class Base:
                    def shared(self):
                        return 0
                """,
                "core.sub": """\
                from repro.core.base import Base


                class Sub(Base):
                    def go(self):
                        return self.shared()
                """,
            },
        )
        assert model.callgraph.callees("repro.core.sub:Sub.go") == \
            frozenset({"repro.core.base:Base.shared"})


class TestDataflow:
    def test_reaching_definitions_are_line_ordered(self):
        import ast

        tree = ast.parse(textwrap.dedent(
            """\
            x = {1}
            x = [1]
            y = x
            """
        ))
        defs = Definitions.from_nodes(list(ast.walk(tree)))
        assert isinstance(defs.reaching("x", 1), ast.Set)
        assert isinstance(defs.reaching("x", 3), ast.List)
        assert defs.reaching("missing", 3) is None

    def test_set_valuedness_follows_names_and_operators(self):
        import ast

        tree = ast.parse(textwrap.dedent(
            """\
            a = set(xs)
            b = a | {1}
            c = b.union(other)
            d = list(xs)
            """
        ))
        defs = Definitions.from_nodes(list(ast.walk(tree)))
        line = 10
        name = lambda n: ast.copy_location(  # noqa: E731
            ast.Name(id=n, ctx=ast.Load()),
            ast.parse("x", mode="eval").body,
        )
        for n, expected in (("a", True), ("b", True), ("c", True),
                            ("d", False)):
            node = name(n)
            node.lineno = line
            assert is_set_valued(node, defs) is expected, n

    def test_exception_summaries_fold_through_callees(self, tmp_path):
        model = _model(
            tmp_path,
            **{
                "runtime.err": """\
                class PackError(Exception):
                    pass


                def inner():
                    raise PackError("boom")


                def outer():
                    return inner()


                def guarded():
                    try:
                        return inner()
                    except PackError:
                        return None
                """,
            },
        )
        summaries = model.exception_summaries()
        assert summaries["repro.runtime.err:inner"] == \
            frozenset({"PackError"})
        assert summaries["repro.runtime.err:outer"] == \
            frozenset({"PackError"})
        assert summaries["repro.runtime.err:guarded"] == frozenset()

    def test_purity_fixpoint(self, tmp_path):
        model = _model(
            tmp_path,
            **{
                "core.p": """\
                def pure(x):
                    return x + 1


                def also_pure(x):
                    return pure(x)


                def impure(acc, x):
                    acc.append(x)


                def tainted(acc, x):
                    impure(acc, x)
                """,
            },
        )
        purity = model.purity()
        assert purity["repro.core.p:pure"] == "pure"
        assert purity["repro.core.p:also_pure"] == "pure"
        assert purity["repro.core.p:impure"] == "impure"
        assert purity["repro.core.p:tainted"] == "impure"
