"""Suppression pragma parsing and enforcement."""

from __future__ import annotations

from repro.devtools import PRAGMA_RULE_ID, PragmaIndex

KNOWN = frozenset({"broad-except", "mutable-default"})


class TestPragmaIndexParse:
    def test_same_line_disable(self):
        index = PragmaIndex.parse(
            [(7, "# lint: disable=broad-except")], KNOWN
        )
        assert index.is_disabled("broad-except", 7)
        assert not index.is_disabled("broad-except", 8)
        assert not index.is_disabled("mutable-default", 7)
        assert not index.errors

    def test_file_wide_disable(self):
        index = PragmaIndex.parse(
            [(3, "# lint: disable-file=mutable-default")], KNOWN
        )
        assert index.is_disabled("mutable-default", 1)
        assert index.is_disabled("mutable-default", 500)
        assert not index.is_disabled("broad-except", 3)

    def test_comma_separated_ids(self):
        index = PragmaIndex.parse(
            [(4, "# lint: disable=broad-except, mutable-default")], KNOWN
        )
        assert index.is_disabled("broad-except", 4)
        assert index.is_disabled("mutable-default", 4)

    def test_justification_after_second_hash(self):
        index = PragmaIndex.parse(
            [(9, "# lint: disable=broad-except  # isolation boundary")],
            KNOWN,
        )
        assert index.is_disabled("broad-except", 9)
        assert not index.errors

    def test_unknown_rule_id_is_rejected_with_clear_error(self):
        index = PragmaIndex.parse(
            [(5, "# lint: disable=no-such-rule")], KNOWN
        )
        assert not index.by_line
        (error,) = index.errors
        assert error.line == 5
        assert "unknown rule ID 'no-such-rule'" in error.message
        assert "broad-except" in error.message  # lists the known IDs

    def test_empty_rule_id_is_rejected(self):
        index = PragmaIndex.parse([(2, "# lint: disable=")], KNOWN)
        (error,) = index.errors
        assert "empty rule ID" in error.message

    def test_pragma_rule_cannot_be_disabled(self):
        index = PragmaIndex.parse(
            [(6, f"# lint: disable-file={PRAGMA_RULE_ID}")], KNOWN
        )
        (error,) = index.errors
        assert "cannot be disabled" in error.message
        # Even a hand-built entry never silences the pragma rule.
        index.file_wide.add(PRAGMA_RULE_ID)
        assert not index.is_disabled(PRAGMA_RULE_ID, 6)

    def test_malformed_pragma_is_an_error_not_a_noop(self):
        index = PragmaIndex.parse([(1, "# lint: disabled broad")], KNOWN)
        (error,) = index.errors
        assert "malformed lint pragma" in error.message

    def test_plain_comments_are_ignored(self):
        index = PragmaIndex.parse(
            [(1, "# just a comment"), (2, "# noqa: BLE001")], KNOWN
        )
        assert not index.errors
        assert not index.by_line
        assert not index.file_wide


class TestPragmasThroughEngine:
    def test_same_line_pragma_suppresses_only_that_line(self, lint):
        findings = lint(
            """\
            try:
                pass
            except Exception:  # lint: disable=broad-except
                pass
            try:
                pass
            except Exception:
                pass
            """,
            rules=["broad-except"],
        )
        assert [f.line for f in findings] == [7]
        assert findings[0].rule == "broad-except"

    def test_file_wide_pragma_suppresses_everywhere(self, lint):
        findings = lint(
            """\
            # lint: disable-file=broad-except
            try:
                pass
            except Exception:
                pass
            """,
            rules=["broad-except"],
        )
        assert findings == []

    def test_unknown_id_surfaces_as_pragma_finding(self, lint):
        findings = lint(
            """\
            try:
                pass
            except Exception:  # lint: disable=broadexcept
                pass
            """,
            rules=["broad-except"],
        )
        rules = {f.rule for f in findings}
        # The typo'd suppression suppresses nothing AND is itself flagged.
        assert rules == {PRAGMA_RULE_ID, "broad-except"}
