"""Suppression pragma parsing and enforcement."""

from __future__ import annotations

from repro.devtools import PRAGMA_RULE_ID, PragmaIndex

KNOWN = frozenset({"broad-except", "mutable-default"})


class TestPragmaIndexParse:
    def test_same_line_disable(self):
        index = PragmaIndex.parse(
            [(7, "# lint: disable=broad-except")], KNOWN
        )
        assert index.is_disabled("broad-except", 7)
        assert not index.is_disabled("broad-except", 8)
        assert not index.is_disabled("mutable-default", 7)
        assert not index.errors

    def test_file_wide_disable(self):
        index = PragmaIndex.parse(
            [(3, "# lint: disable-file=mutable-default")], KNOWN
        )
        assert index.is_disabled("mutable-default", 1)
        assert index.is_disabled("mutable-default", 500)
        assert not index.is_disabled("broad-except", 3)

    def test_comma_separated_ids(self):
        index = PragmaIndex.parse(
            [(4, "# lint: disable=broad-except, mutable-default")], KNOWN
        )
        assert index.is_disabled("broad-except", 4)
        assert index.is_disabled("mutable-default", 4)

    def test_justification_after_second_hash(self):
        index = PragmaIndex.parse(
            [(9, "# lint: disable=broad-except  # isolation boundary")],
            KNOWN,
        )
        assert index.is_disabled("broad-except", 9)
        assert not index.errors

    def test_unknown_rule_id_is_rejected_with_clear_error(self):
        index = PragmaIndex.parse(
            [(5, "# lint: disable=no-such-rule")], KNOWN
        )
        assert not index.by_line
        (error,) = index.errors
        assert error.line == 5
        assert "unknown rule ID 'no-such-rule'" in error.message
        assert "broad-except" in error.message  # lists the known IDs

    def test_empty_rule_id_is_rejected(self):
        index = PragmaIndex.parse([(2, "# lint: disable=")], KNOWN)
        (error,) = index.errors
        assert "empty rule ID" in error.message

    def test_pragma_rule_cannot_be_disabled(self):
        index = PragmaIndex.parse(
            [(6, f"# lint: disable-file={PRAGMA_RULE_ID}")], KNOWN
        )
        (error,) = index.errors
        assert "cannot be disabled" in error.message
        # Even a hand-built entry never silences the pragma rule.
        index.file_wide.add(PRAGMA_RULE_ID)
        assert not index.is_disabled(PRAGMA_RULE_ID, 6)

    def test_malformed_pragma_is_an_error_not_a_noop(self):
        index = PragmaIndex.parse([(1, "# lint: disabled broad")], KNOWN)
        (error,) = index.errors
        assert "malformed lint pragma" in error.message

    def test_plain_comments_are_ignored(self):
        index = PragmaIndex.parse(
            [(1, "# just a comment"), (2, "# noqa: BLE001")], KNOWN
        )
        assert not index.errors
        assert not index.by_line
        assert not index.file_wide


class TestPragmasThroughEngine:
    def test_same_line_pragma_suppresses_only_that_line(self, lint):
        findings = lint(
            """\
            try:
                pass
            except Exception:  # lint: disable=broad-except
                pass
            try:
                pass
            except Exception:
                pass
            """,
            rules=["broad-except"],
        )
        assert [f.line for f in findings] == [7]
        assert findings[0].rule == "broad-except"

    def test_file_wide_pragma_suppresses_everywhere(self, lint):
        findings = lint(
            """\
            # lint: disable-file=broad-except
            try:
                pass
            except Exception:
                pass
            """,
            rules=["broad-except"],
        )
        assert findings == []

    def test_unknown_id_surfaces_as_pragma_finding(self, lint):
        findings = lint(
            """\
            try:
                pass
            except Exception:  # lint: disable=broadexcept
                pass
            """,
            rules=["broad-except"],
        )
        rules = {f.rule for f in findings}
        # The typo'd suppression suppresses nothing AND is itself flagged.
        assert rules == {PRAGMA_RULE_ID, "broad-except"}


class TestPragmaEdgeCases:
    """The v2 hardening: disable-file placement and multi-ID errors."""

    def test_disable_file_below_the_header_is_a_hard_error(self, lint):
        findings = lint(
            """\
            import os

            # lint: disable-file=broad-except
            try:
                pass
            except Exception:
                pass
            """,
            rules=["broad-except"],
        )
        rules = [f.rule for f in findings]
        # The buried pragma suppresses nothing AND is itself flagged.
        assert PRAGMA_RULE_ID in rules
        assert "broad-except" in rules
        error = next(f for f in findings if f.rule == PRAGMA_RULE_ID)
        assert error.line == 3
        assert "line 3" in error.message
        assert "first statement is on line 1" in error.message

    def test_disable_file_in_the_header_still_works(self, lint):
        # Between the docstring and the first statement is the header.
        findings = lint(
            """\
            '''Module docstring.'''
            # lint: disable-file=broad-except
            try:
                pass
            except Exception:
                pass
            """,
            rules=["broad-except"],
        )
        assert findings == []

    def test_multi_id_pragma_names_the_unknown_id(self, lint):
        findings = lint(
            """\
            try:
                pass
            except Exception:  # lint: disable=broad-except,nosuchrule
                pass
            """,
            rules=["broad-except"],
        )
        # The one bad ID is named; the valid ID still applies.
        assert [f.rule for f in findings] == [PRAGMA_RULE_ID]
        assert "'nosuchrule'" in findings[0].message
        assert "broad-except" not in [f.rule for f in findings]

    def test_multi_id_disable_file_with_unknown_id(self, lint):
        findings = lint(
            """\
            # lint: disable-file=broad-except,bogus-rule
            try:
                pass
            except Exception:
                pass
            """,
            rules=["broad-except"],
        )
        assert [f.rule for f in findings] == [PRAGMA_RULE_ID]
        assert "'bogus-rule'" in findings[0].message

    def test_pragma_for_inactive_registry_rule_is_legitimate(self, lint):
        # A --rules subset run must not flag pragmas for other
        # registered rules (the suppression contract is registry-wide).
        findings = lint(
            """\
            try:
                pass
            except Exception:  # lint: disable=broad-except,silent-degrade
                pass
            """,
            rules=["broad-except"],
        )
        assert findings == []
