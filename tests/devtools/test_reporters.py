"""Text and JSON reporters."""

from __future__ import annotations

import json

from repro.devtools import Finding, render_json, render_text

FINDINGS = [
    Finding(rule="broad-except", path="src/a.py", line=3, col=0,
            message="bare 'except:' swallows every error"),
    Finding(rule="mutable-default", path="src/b.py", line=12, col=8,
            message="mutable default for parameter 'acc'"),
]


class TestTextReporter:
    def test_one_location_line_per_finding(self):
        text = render_text(FINDINGS)
        lines = text.splitlines()
        assert lines[0] == (
            "src/a.py:3:0: [broad-except] bare 'except:' swallows every error"
        )
        assert lines[1].startswith("src/b.py:12:8: [mutable-default]")

    def test_summary_counts_findings_and_files(self):
        assert render_text(FINDINGS).splitlines()[-1] == \
            "reprolint: 2 findings in 2 files"
        assert render_text(FINDINGS[:1]).splitlines()[-1] == \
            "reprolint: 1 finding in 1 file"

    def test_clean_run_still_prints_a_summary(self):
        assert render_text([]) == "reprolint: clean (0 findings)\n"


class TestJsonReporter:
    def test_round_trips_through_json_loads(self):
        payload = json.loads(render_json(FINDINGS))
        assert payload["count"] == 2
        assert payload["findings"][0] == {
            "rule": "broad-except",
            "path": "src/a.py",
            "line": 3,
            "col": 0,
            "message": "bare 'except:' swallows every error",
        }

    def test_empty_document_shape(self):
        payload = json.loads(render_json([]))
        assert payload == {"count": 0, "findings": []}

    def test_output_is_byte_stable(self):
        assert render_json(FINDINGS) == render_json(list(FINDINGS))
        assert render_json(FINDINGS).endswith("\n")
