"""Per-rule fixture battery: each rule fires on a violation and stays
silent on the sanctioned shape right next to it."""

# The fixture snippets below deliberately cite nonexistent definitions.
# lint: disable-file=definition-xref

from __future__ import annotations

from repro.devtools import LintEngine, all_rules

SIM_PATH = "src/repro/similarity/snippet.py"
RUNTIME_PATH = "src/repro/runtime/snippet.py"
CORE_PATH = "src/repro/core/snippet.py"
SERVER_PATH = "src/repro/server/snippet.py"


def rules_of(findings):
    return [f.rule for f in findings]


class TestIndexParity:
    def test_fires_on_unguarded_deref(self, lint):
        findings = lint(
            """\
            def depth(concept, index=None):
                return index.depth(concept)
            """,
            rules=["index-parity"],
        )
        (finding,) = findings
        assert finding.rule == "index-parity"
        assert finding.line == 2
        assert "is not None" in finding.message

    def test_fires_when_guard_has_no_fallback(self, lint):
        findings = lint(
            """\
            def depth(network, concept, index=None):
                if index is not None:
                    return index.depth(concept)
            """,
            rules=["index-parity"],
        )
        (finding,) = findings
        assert finding.rule == "index-parity"
        assert "fallback" in finding.message

    def test_silent_on_guarded_fast_path_with_fallback(self, lint):
        assert lint(
            """\
            def depth(network, concept, index=None):
                if index is not None:
                    return index.depth(concept)
                return len(network.path_to_root(concept))
            """,
            rules=["index-parity"],
        ) == []

    def test_silent_on_is_none_early_fallback(self, lint):
        assert lint(
            """\
            def depth(network, concept, index=None):
                if index is None:
                    return len(network.path_to_root(concept))
                return index.depth(concept)
            """,
            rules=["index-parity"],
        ) == []

    def test_silent_on_required_index_param(self, lint):
        # A pytest fixture / positional integer named `index` is not the
        # SemanticIndex contract and must not trip the rule.
        assert lint(
            """\
            def test_search(index):
                assert index.documents("film")
            """,
            rules=["index-parity"],
            path="tests/applications/snippet.py",
        ) == []

    def test_fires_on_unguarded_self_index(self, lint):
        findings = lint(
            """\
            class Measure:
                def __call__(self, a, b):
                    return self._index.lcs(a, b)
            """,
            rules=["index-parity"],
        )
        assert rules_of(findings) == ["index-parity"]

    def test_silent_on_index_pass_through(self, lint):
        assert lint(
            """\
            class Measure:
                def __init__(self, network, index=None):
                    self._network = network
                    self._index = index
            """,
            rules=["index-parity"],
        ) == []

    def test_tracks_alias_of_self_index(self, lint):
        assert lint(
            """\
            class Measure:
                def __call__(self, a, b):
                    index = self._index
                    if index is None:
                        return self._walk(a, b)
                    return index.lcs(a, b)
            """,
            rules=["index-parity"],
        ) == []

    def test_fires_on_unguarded_packed_deref(self, lint):
        # The PackedIndex fast path (self._packed) carries the same
        # guard + fallback contract as the dict index.
        findings = lint(
            """\
            class Measure:
                def __call__(self, a, b):
                    return self._packed.pair_terms(a, b)
            """,
            rules=["index-parity"],
        )
        assert rules_of(findings) == ["index-parity"]

    def test_tracks_alias_of_self_packed_with_fallback(self, lint):
        assert lint(
            """\
            class Measure:
                def __call__(self, a, b):
                    packed = self._packed
                    if packed is not None:
                        return packed.pair_terms(a, b)
                    return self._walk(a, b)
            """,
            rules=["index-parity"],
        ) == []


class TestCachePurity:
    def test_fires_on_parameter_mutation(self, lint):
        findings = lint(
            """\
            def score(tokens):
                tokens.append("pad")
                return len(tokens)
            """,
            rules=["cache-purity"], path=SIM_PATH,
        )
        (finding,) = findings
        assert finding.rule == "cache-purity"
        assert "'tokens'" in finding.message

    def test_fires_on_subscript_store_into_parameter(self, lint):
        findings = lint(
            """\
            def score(table, key):
                table[key] = 1.0
            """,
            rules=["cache-purity"], path=RUNTIME_PATH,
        )
        assert rules_of(findings) == ["cache-purity"]

    def test_fires_on_global_reassignment(self, lint):
        findings = lint(
            """\
            _CACHE = None

            def warm():
                global _CACHE
                _CACHE = {}
            """,
            rules=["cache-purity"], path=RUNTIME_PATH,
        )
        (finding,) = findings
        assert finding.rule == "cache-purity"
        assert "_CACHE" in finding.message

    def test_silent_on_copied_then_mutated_local(self, lint):
        # Rebinding the name first makes the mutation local, not shared.
        assert lint(
            """\
            def score(tokens):
                tokens = list(tokens)
                tokens.append("pad")
                return len(tokens)
            """,
            rules=["cache-purity"], path=SIM_PATH,
        ) == []

    def test_silent_on_self_mutation(self, lint):
        assert lint(
            """\
            class Cache:
                def put(self, key, value):
                    self._data[key] = value
            """,
            rules=["cache-purity"], path=RUNTIME_PATH,
        ) == []


class TestDeterminism:
    def test_fires_on_unseeded_random(self, lint):
        findings = lint(
            """\
            import random

            def jitter(x):
                return x + random.random()
            """,
            rules=["determinism"], path=CORE_PATH,
        )
        (finding,) = findings
        assert finding.rule == "determinism"
        assert "unseeded" in finding.message

    def test_fires_on_wall_clock_and_environ(self, lint):
        findings = lint(
            """\
            import os
            import time

            def stamp():
                return time.time(), os.environ["HOME"]
            """,
            rules=["determinism"], path=CORE_PATH,
        )
        assert sorted(rules_of(findings)) == ["determinism", "determinism"]

    def test_fires_on_set_iteration(self, lint):
        findings = lint(
            """\
            def first(words):
                for word in set(words):
                    return word
            """,
            rules=["determinism"], path=CORE_PATH,
        )
        (finding,) = findings
        assert "no guaranteed order" in finding.message

    def test_silent_on_seeded_rng_and_sorted_sets(self, lint):
        assert lint(
            """\
            import random

            def sample(words, seed):
                rng = random.Random(seed)
                for word in sorted(set(words)):
                    if rng.random() < 0.5:
                        return word
            """,
            rules=["determinism"], path=CORE_PATH,
        ) == []

    def test_silent_outside_pipeline_scope(self, lint):
        assert lint(
            """\
            import time

            def stamp():
                return time.time()
            """,
            rules=["determinism"], path="src/repro/runtime/snippet.py",
        ) == []


class TestPicklableSubmit:
    def test_fires_on_lambda_to_pool(self, lint):
        findings = lint(
            """\
            def run(pool, docs):
                return pool.map(lambda d: d.upper(), docs)
            """,
            rules=["picklable-submit"],
        )
        (finding,) = findings
        assert finding.rule == "picklable-submit"
        assert "do not pickle" in finding.message

    def test_fires_on_local_function_to_pool(self, lint):
        findings = lint(
            """\
            def run(executor, docs):
                def work(doc):
                    return doc.upper()
                return executor.submit(work, docs)
            """,
            rules=["picklable-submit"],
        )
        (finding,) = findings
        assert "'work'" in finding.message

    def test_fires_on_lambda_initializer(self, lint):
        findings = lint(
            """\
            def run(docs):
                with Pool(2, initializer=lambda: None) as pool:
                    return pool.map(str.upper, docs)
            """,
            rules=["picklable-submit"],
        )
        assert rules_of(findings) == ["picklable-submit"]

    def test_silent_on_module_level_worker(self, lint):
        assert lint(
            """\
            def work(doc):
                return doc.upper()

            def run(pool, docs):
                return pool.map(work, docs)
            """,
            rules=["picklable-submit"],
        ) == []

    def test_silent_on_non_pool_fluent_map(self, lint):
        # hypothesis strategies chain `.map(lambda ...)`; only receivers
        # that *name* a pool/executor engage the heuristic.
        assert lint(
            """\
            def strategy(st):
                return st.integers(0, 10).map(lambda n: n / 10.0)
            """,
            rules=["picklable-submit"],
        ) == []


class TestDefinitionXref:
    def test_fires_on_unknown_definition(self, lint, design_root):
        findings = lint(
            '''\
            def combine(a, b):
                """Implements Definition 99 of the paper."""
                return a + b
            ''',
            rules=["definition-xref"], root=design_root,
        )
        (finding,) = findings
        assert finding.rule == "definition-xref"
        assert finding.line == 2
        assert "Definition 99" in finding.message

    def test_fires_in_comments_and_respects_ranges(self, lint, design_root):
        findings = lint(
            """\
            X = 1  # normalization from Defs 4-7
            """,
            rules=["definition-xref"], root=design_root,
        )
        (finding,) = findings
        # Defs 4-5 exist in the mini catalogue; 6 and 7 do not.
        assert "6, 7" in finding.message

    def test_multiline_docstring_line_offset(self, lint, design_root):
        findings = lint(
            '''\
            def f():
                """Summary line.

                Cites Eq. (77) here.
                """
            ''',
            rules=["definition-xref"], root=design_root,
        )
        (finding,) = findings
        assert finding.line == 4

    def test_silent_on_valid_citations(self, lint, design_root):
        assert lint(
            '''\
            def combine(a, b):
                """Definition 2 sense scores via Eq. (12); see Prop. 1."""
                return a + b  # Definition 3
            ''',
            rules=["definition-xref"], root=design_root,
        ) == []

    def test_inert_without_catalogue(self, lint, tmp_path):
        bare = tmp_path / "no-docs"
        bare.mkdir()
        assert lint(
            '"""Definition 99 everywhere."""\n',
            rules=["definition-xref"], root=bare,
        ) == []


class TestBroadExcept:
    def test_fires_on_bare_except(self, lint):
        findings = lint(
            """\
            try:
                pass
            except:
                pass
            """,
            rules=["broad-except"],
        )
        (finding,) = findings
        assert "bare 'except:'" in finding.message

    def test_fires_on_exception_and_tuple(self, lint):
        findings = lint(
            """\
            try:
                pass
            except Exception:
                pass
            try:
                pass
            except (ValueError, BaseException):
                pass
            """,
            rules=["broad-except"],
        )
        assert rules_of(findings) == ["broad-except", "broad-except"]

    def test_silent_on_specific_exceptions(self, lint):
        assert lint(
            """\
            try:
                pass
            except (ValueError, KeyError):
                pass
            """,
            rules=["broad-except"],
        ) == []

    def test_annotated_isolation_boundary_is_sanctioned(self, lint):
        assert lint(
            """\
            try:
                pass
            except Exception:  # lint: disable=broad-except  # isolation
                pass
            """,
            rules=["broad-except"],
        ) == []


class TestMutableDefault:
    def test_fires_on_literal_and_call_defaults(self, lint):
        findings = lint(
            """\
            def f(a, acc=[], *, seen=set(), table={}):
                pass
            """,
            rules=["mutable-default"],
        )
        assert rules_of(findings) == ["mutable-default"] * 3

    def test_fires_on_lambda_default(self, lint):
        findings = lint(
            "g = lambda acc=[]: acc\n",
            rules=["mutable-default"],
        )
        assert rules_of(findings) == ["mutable-default"]

    def test_silent_on_immutable_defaults(self, lint):
        assert lint(
            """\
            def f(a=None, b=(), c="x", d=0, e=frozenset()):
                pass
            """,
            rules=["mutable-default"],
        ) == []


class TestPublicApi:
    def test_fires_on_missing_docstrings(self, lint):
        findings = lint(
            """\
            def score(a, b):
                return a + b

            class Measure:
                def compare(self, a, b):
                    return a == b
            """,
            rules=["public-api"], path=CORE_PATH,
        )
        assert rules_of(findings) == ["public-api"] * 3
        messages = " ".join(f.message for f in findings)
        assert "'score'" in messages
        assert "'Measure'" in messages
        assert "'Measure.compare'" in messages

    def test_private_names_and_nested_defs_exempt(self, lint):
        assert lint(
            '''\
            def _helper(a):
                return a

            def score(a):
                """Score one pair."""
                def inner(x):
                    return x
                return inner(a)
            ''',
            rules=["public-api"], path=CORE_PATH,
        ) == []

    def test_annotations_required_in_typed_surface(self, lint):
        source = '''\
        def score(a, b):
            """Score one pair."""
            return a + b
        '''
        typed = lint(source, rules=["public-api"], path=SIM_PATH)
        untyped = lint(source, rules=["public-api"], path=CORE_PATH)
        assert len(typed) == 2  # missing params + missing return
        assert "annotations for: a, b" in typed[0].message
        assert untyped == []

    def test_silent_on_fully_annotated_typed_surface(self, lint):
        assert lint(
            '''\
            def score(a: str, b: str) -> float:
                """Score one pair."""
                return 0.0
            ''',
            rules=["public-api"], path=SIM_PATH,
        ) == []

    def test_outside_src_repro_is_not_public_api(self, lint):
        assert lint(
            """\
            def helper():
                return 1
            """,
            rules=["public-api"], path="tests/core/snippet.py",
        ) == []


class TestMemoKeyPurity:
    def test_fires_on_live_config_and_network_reads(self, lint):
        findings = lint(
            """\
            def sphere_signature(sphere, config, network):
                return (config.sphere_radius, network.version, sphere)
            """,
            rules=["memo-key-purity"], path=RUNTIME_PATH,
        )
        assert rules_of(findings) == ["memo-key-purity"] * 2
        messages = " ".join(f.message for f in findings)
        assert "config.sphere_radius" in messages
        assert "network.version" in messages

    def test_fires_on_self_attribute_chains(self, lint):
        findings = lint(
            """\
            class SphereMemo:
                def signature(self, sphere):
                    return (self._config.approach, sphere)
            """,
            rules=["memo-key-purity"], path=RUNTIME_PATH,
        )
        assert rules_of(findings) == ["memo-key-purity"]
        assert "self._config.approach" in findings[0].message

    def test_silent_on_frozen_digests_and_fingerprint_calls(self, lint):
        assert lint(
            """\
            def sphere_signature(sphere, config_fp, network_fp):
                return (config_fp, network_fp, sphere)

            def make_signature(sphere, network):
                return (network.fingerprint(), sphere)

            class SphereMemo:
                def signature(self, sphere):
                    return (self._config_fp, self._network_fp, sphere)
            """,
            rules=["memo-key-purity"], path=RUNTIME_PATH,
        ) == []

    def test_fingerprint_builders_are_the_sanctioned_readers(self, lint):
        assert lint(
            """\
            def config_fingerprint(config):
                return repr(config.sphere_radius)
            """,
            rules=["memo-key-purity"], path=RUNTIME_PATH,
        ) == []

    def test_silent_outside_runtime_scope(self, lint):
        assert lint(
            """\
            def sphere_signature(sphere, config, network):
                return (config.sphere_radius, sphere)
            """,
            rules=["memo-key-purity"], path=CORE_PATH,
        ) == []

    def test_silent_on_non_signature_functions(self, lint):
        assert lint(
            """\
            def build_executor(config, network):
                return (config.sphere_radius, network.stats())
            """,
            rules=["memo-key-purity"], path=RUNTIME_PATH,
        ) == []


class TestSilentDegrade:
    def test_fires_on_silent_fallback_in_runtime_scope(self, lint):
        findings = lint(
            """\
            def decode(blob, network):
                try:
                    return unpack(blob)
                except DecodeError:
                    return rebuild(network)
            """,
            rules=["silent-degrade"], path=RUNTIME_PATH,
        )
        (finding,) = findings
        assert finding.rule == "silent-degrade"
        assert "degrades silently" in finding.message

    def test_silent_when_the_handler_reraises(self, lint):
        assert lint(
            """\
            def decode(blob):
                try:
                    return unpack(blob)
                except DecodeError:
                    raise
            """,
            rules=["silent-degrade"], path=RUNTIME_PATH,
        ) == []

    def test_silent_when_the_fallback_emits_a_metric(self, lint):
        assert lint(
            """\
            def decode(blob, network, metrics):
                try:
                    return unpack(blob)
                except DecodeError as exc:
                    metrics.event("pool_fault", error=str(exc))
                    return rebuild(network)
            """,
            rules=["silent-degrade"], path=RUNTIME_PATH,
        ) == []

    def test_silent_on_lookup_miss_handlers(self, lint):
        """Absence handling (KeyError & friends) is not a degrade."""
        assert lint(
            """\
            def lookup(cache, key):
                try:
                    return cache[key]
                except (KeyError, IndexError):
                    return None
            """,
            rules=["silent-degrade"], path=RUNTIME_PATH,
        ) == []

    def test_annotated_deliberate_silence_is_sanctioned(self, lint):
        assert lint(
            """\
            def decode(blob, network):
                try:
                    return unpack(blob)
                except DecodeError:  # lint: disable=silent-degrade  # surfaced via worker stats
                    return rebuild(network)
            """,
            rules=["silent-degrade"], path=RUNTIME_PATH,
        ) == []

    def test_silent_outside_runtime_scope(self, lint):
        """The rule polices the runtime package, not the whole tree."""
        assert lint(
            """\
            def decode(blob, network):
                try:
                    return unpack(blob)
                except DecodeError:
                    return rebuild(network)
            """,
            rules=["silent-degrade"], path=CORE_PATH,
        ) == []


class TestHandlerEnvelope:
    def test_fires_on_swallowed_request_failure(self, lint):
        findings = lint(
            """\
            async def handle(request, writer):
                try:
                    await dispatch(request, writer)
                except ValueError:
                    pass
            """,
            rules=["handler-envelope"], path=SERVER_PATH,
        )
        (finding,) = findings
        assert finding.rule == "handler-envelope"
        assert "envelope" in finding.message

    def test_silent_when_the_handler_reraises(self, lint):
        assert lint(
            """\
            async def handle(request, writer):
                try:
                    await dispatch(request, writer)
                except ValueError as exc:
                    raise ProtocolError(400, str(exc))
            """,
            rules=["handler-envelope"], path=SERVER_PATH,
        ) == []

    def test_silent_when_the_handler_writes_an_envelope(self, lint):
        assert lint(
            """\
            async def handle(request, writer):
                try:
                    await dispatch(request, writer)
                except ValueError as exc:
                    await write_error_envelope(writer, exc)
            """,
            rules=["handler-envelope"], path=SERVER_PATH,
        ) == []

    def test_silent_when_an_envelope_method_is_called(self, lint):
        assert lint(
            """\
            async def handle(self, request, writer):
                try:
                    await self.dispatch(request, writer)
                except ValueError as exc:
                    await self._write_envelope(writer, 400, exc)
            """,
            rules=["handler-envelope"], path=SERVER_PATH,
        ) == []

    def test_silent_on_lookup_miss_handlers(self, lint):
        """Absence handling (KeyError & friends) is control flow."""
        assert lint(
            """\
            def session_for(sessions, fingerprint):
                try:
                    return sessions[fingerprint]
                except KeyError:
                    return None
            """,
            rules=["handler-envelope"], path=SERVER_PATH,
        ) == []

    def test_annotated_teardown_silence_is_sanctioned(self, lint):
        assert lint(
            """\
            async def teardown(writer):
                try:
                    await writer.wait_closed()
                except OSError:  # lint: disable=handler-envelope  # peer already gone
                    pass
            """,
            rules=["handler-envelope"], path=SERVER_PATH,
        ) == []

    def test_silent_outside_server_scope(self, lint):
        """The rule polices the server package, not the whole tree."""
        assert lint(
            """\
            def decode(blob):
                try:
                    return unpack(blob)
                except ValueError:
                    return None
            """,
            rules=["handler-envelope"], path=CORE_PATH,
        ) == []


class TestFullRuleSetOnCleanCode:
    def test_idiomatic_snippet_is_clean_under_every_rule(self, lint,
                                                         design_root):
        findings = lint(
            '''\
            """Module docstring citing Definition 1."""


            def depth(network: object, concept: str,
                      index: object | None = None) -> int:
                """Taxonomy depth via Eq. (10), indexed when possible."""
                if index is not None:
                    return index.depth(concept)
                return len(network.path_to_root(concept))
            ''',
            rules=None, path=SIM_PATH, root=design_root,
        )
        assert findings == []
