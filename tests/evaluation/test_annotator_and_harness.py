"""Tests for the simulated annotators and the experiment harness."""

from __future__ import annotations

import pytest

from repro.datasets import generate_test_corpus
from repro.datasets.stats import document_tree
from repro.evaluation.annotator import (
    MAX_RATING,
    SimulatedAnnotator,
    panel_ratings,
)
from repro.evaluation.harness import (
    TABLE2_TESTS,
    ambiguity_correlation,
    evaluate_quality,
    make_system_factory,
    select_eval_nodes,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_test_corpus()


@pytest.fixture(scope="module")
def shakespeare_doc(corpus):
    return corpus.by_group(1)[0]


@pytest.fixture(scope="module")
def personnel_doc(corpus):
    return corpus.by_dataset("niagara_personnel")[0]


class TestAnnotator:
    def test_ratings_in_range(self, lexicon, corpus, shakespeare_doc):
        tree = document_tree(shakespeare_doc, lexicon)
        annotator = SimulatedAnnotator(lexicon, seed=0)
        for node in list(tree)[:40]:
            rating = annotator.rate(node, tree, shakespeare_doc.gold)
            assert 0 <= rating <= MAX_RATING

    def test_monosemous_rated_zero_modulo_noise(self, lexicon, corpus,
                                                personnel_doc):
        tree = document_tree(personnel_doc, lexicon)
        annotator = SimulatedAnnotator(lexicon, seed=0, noise_rate=0.0)
        email = tree.find("email")
        assert annotator.rate(email, tree, personnel_doc.gold) == 0

    def test_state_under_address_rated_obvious(self, lexicon, corpus,
                                               personnel_doc):
        # The paper's flagship example: 'state' has many lexicon senses
        # but its everyday administrative reading fits the address
        # context, so the human rating stays minimal.
        tree = document_tree(personnel_doc, lexicon)
        annotator = SimulatedAnnotator(lexicon, seed=0, noise_rate=0.0)
        state = tree.find("state")
        assert lexicon.polysemy("state") >= 6
        assert annotator.rate(state, tree, personnel_doc.gold) <= 1

    def test_theater_vocabulary_rated_ambiguous(self, lexicon,
                                                shakespeare_doc):
        tree = document_tree(shakespeare_doc, lexicon)
        annotator = SimulatedAnnotator(lexicon, seed=0, noise_rate=0.0)
        speech = tree.find("speech")
        assert annotator.rate(speech, tree, shakespeare_doc.gold) >= 1

    def test_rater_determinism(self, lexicon, shakespeare_doc):
        tree = document_tree(shakespeare_doc, lexicon)
        nodes = list(tree)[:10]
        first = panel_ratings(lexicon, tree, nodes, shakespeare_doc.gold)
        second = panel_ratings(lexicon, tree, nodes, shakespeare_doc.gold)
        assert first == second

    def test_raters_disagree_sometimes(self, lexicon, shakespeare_doc):
        tree = document_tree(shakespeare_doc, lexicon)
        a = SimulatedAnnotator(lexicon, seed=0)
        b = SimulatedAnnotator(lexicon, seed=1)
        nodes = list(tree)[:60]
        ratings_a = [a.rate(n, tree, shakespeare_doc.gold) for n in nodes]
        ratings_b = [b.rate(n, tree, shakespeare_doc.gold) for n in nodes]
        assert ratings_a != ratings_b


class TestNodeSelection:
    def test_count_matches_paper_protocol(self, lexicon, corpus):
        for doc in corpus.by_group(1):
            tree = document_tree(doc, lexicon)
            nodes = select_eval_nodes(tree, doc)
            assert 12 <= len(nodes) <= 13

    def test_selection_deterministic(self, lexicon, shakespeare_doc):
        tree = document_tree(shakespeare_doc, lexicon)
        first = [n.index for n in select_eval_nodes(tree, shakespeare_doc)]
        second = [n.index for n in select_eval_nodes(tree, shakespeare_doc)]
        assert first == second

    def test_only_gold_labels_selected(self, lexicon, shakespeare_doc):
        tree = document_tree(shakespeare_doc, lexicon)
        for node in select_eval_nodes(tree, shakespeare_doc):
            assert node.label in shakespeare_doc.gold

    def test_salt_changes_selection(self, lexicon, shakespeare_doc):
        tree = document_tree(shakespeare_doc, lexicon)
        a = [n.index for n in select_eval_nodes(tree, shakespeare_doc, "x")]
        b = [n.index for n in select_eval_nodes(tree, shakespeare_doc, "y")]
        assert a != b


class TestQualityEvaluation:
    def test_counts_consistent(self, lexicon, corpus):
        system = make_system_factory("first-sense", lexicon)()
        docs = corpus.by_dataset("cd_catalog")
        result = evaluate_quality(system, docs, lexicon)
        assert result.n_correct <= result.n_predicted <= result.n_gold
        assert result.prf.precision == pytest.approx(
            result.n_correct / result.n_predicted
        )

    def test_tree_cache_used(self, lexicon, corpus):
        cache = {}
        system = make_system_factory("first-sense", lexicon)()
        docs = corpus.by_dataset("food_menu")
        evaluate_quality(system, docs, lexicon, cache)
        assert len(cache) == len(docs)

    def test_xsdf_factory_variants(self, lexicon):
        for name in ("xsdf-concept-d1", "xsdf-context-d3", "xsdf-combined"):
            system = make_system_factory(name, lexicon)()
            assert hasattr(system, "disambiguate_tree")

    def test_unknown_factory_rejected(self, lexicon):
        with pytest.raises(KeyError):
            make_system_factory("nonsense", lexicon)


class TestCorrelationExperiment:
    def test_correlation_in_range(self, lexicon, shakespeare_doc):
        for weights in TABLE2_TESTS.values():
            value = ambiguity_correlation(shakespeare_doc, lexicon, weights)
            assert -1.0 <= value <= 1.0

    def test_group1_correlates_positively(self, lexicon, shakespeare_doc):
        weights = TABLE2_TESTS["Test #1 (all factors)"]
        assert ambiguity_correlation(shakespeare_doc, lexicon, weights) > 0.3

    def test_four_configurations_defined(self):
        assert len(TABLE2_TESTS) == 4
        polysemy_only = TABLE2_TESTS["Test #2 (polysemy)"]
        assert polysemy_only.depth == 0.0 and polysemy_only.density == 0.0
