"""Tests for the programmatic experiment-report module."""

from __future__ import annotations

import pytest

from repro.datasets import generate_test_corpus
from repro.evaluation.experiments import (
    render_markdown,
    table1,
    table2,
    table3,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_test_corpus()


class TestTables:
    def test_table1_rows(self, corpus, lexicon):
        title, headers, rows = table1(corpus, lexicon)
        assert "Table 1" in title
        assert len(rows) == 4
        assert rows[0][0] == "Group 1"
        # Ambiguity column parses back to floats in [0, 1].
        for row in rows:
            assert 0.0 <= float(row[2]) <= 1.0

    def test_table2_rows(self, corpus, lexicon):
        _title, headers, rows = table2(corpus, lexicon)
        assert len(rows) == 10  # one per dataset
        assert len(headers) == 5  # dataset + four tests
        for row in rows:
            for cell in row[1:]:
                assert -1.0 <= float(cell) <= 1.0

    def test_table3_rows(self, corpus, lexicon):
        _title, _headers, rows = table3(corpus, lexicon)
        assert len(rows) == 10
        docs_total = sum(int(row[2]) for row in rows)
        assert docs_total == 60

    def test_tables_deterministic(self, corpus, lexicon):
        assert table1(corpus, lexicon) == table1(corpus, lexicon)


class TestRendering:
    def test_markdown_shape(self):
        text = render_markdown(
            ("My table", ["a", "b"], [["1", "2"], ["3", "4"]])
        )
        lines = text.splitlines()
        assert lines[0] == "### My table"
        assert lines[2] == "| a | b |"
        assert lines[3] == "|---|---|"
        assert "| 1 | 2 |" in lines

    def test_markdown_handles_non_string_cells(self):
        text = render_markdown(("T", ["x"], [[42]]))
        assert "| 42 |" in text
