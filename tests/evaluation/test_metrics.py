"""Unit tests for evaluation metrics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    PRF,
    average_prf,
    pearson_correlation,
    precision_recall,
)


class TestPRF:
    def test_perfect_scores(self):
        prf = precision_recall(10, 10, 10)
        assert prf.precision == prf.recall == prf.f_value == 1.0

    def test_partial(self):
        prf = precision_recall(6, 8, 12)
        assert prf.precision == pytest.approx(0.75)
        assert prf.recall == pytest.approx(0.5)
        assert prf.f_value == pytest.approx(0.6)

    def test_zero_predictions(self):
        prf = precision_recall(0, 0, 10)
        assert prf.precision == prf.recall == prf.f_value == 0.0

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(ValueError):
            precision_recall(5, 3, 10)

    def test_average(self):
        avg = average_prf([PRF(1.0, 0.5), PRF(0.5, 1.0)])
        assert avg.precision == pytest.approx(0.75)
        assert avg.recall == pytest.approx(0.75)

    def test_average_empty(self):
        assert average_prf([]).f_value == 0.0

    @given(
        st.integers(0, 100), st.integers(0, 100), st.integers(0, 100)
    )
    def test_f_between_p_and_r(self, correct, extra_predicted, extra_gold):
        predicted = correct + extra_predicted
        gold = correct + extra_gold
        prf = precision_recall(correct, predicted, gold)
        low, high = sorted((prf.precision, prf.recall))
        assert low - 1e-12 <= prf.f_value <= high + 1e-12


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1)

    def test_no_variance_is_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_short_series_zero(self):
        assert pearson_correlation([1], [2]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1])

    @given(
        st.lists(
            st.integers(-1000, 1000).map(lambda n: n / 10.0),
            min_size=2, max_size=20,
        )
    )
    def test_self_correlation(self, xs):
        # Integer-grid values keep the variance away from the subnormal
        # range where the squared deviations underflow to zero.
        if len(set(xs)) > 1:
            assert pearson_correlation(xs, xs) == pytest.approx(1.0)

    @given(
        st.lists(st.floats(min_value=-50, max_value=50), min_size=3,
                 max_size=15),
        st.lists(st.floats(min_value=-50, max_value=50), min_size=3,
                 max_size=15),
    )
    def test_bounded_and_symmetric(self, xs, ys):
        n = min(len(xs), len(ys))
        xs, ys = xs[:n], ys[:n]
        r = pearson_correlation(xs, ys)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9
        assert pearson_correlation(ys, xs) == pytest.approx(r)
