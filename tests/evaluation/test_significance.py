"""Tests for paired bootstrap significance testing."""

from __future__ import annotations

import pytest

from repro.datasets import generate_test_corpus
from repro.evaluation import make_system_factory
from repro.evaluation.significance import (
    SignificanceResult,
    compare_systems,
    paired_bootstrap,
    paired_outcomes,
)


class TestBootstrapMechanics:
    def test_clear_winner_is_significant(self):
        pairs = [(True, False)] * 40 + [(True, True)] * 40
        result = paired_bootstrap(pairs, n_resamples=500)
        assert result.accuracy_a == 1.0
        assert result.accuracy_b == 0.5
        assert result.p_value < 0.01
        assert result.significant()

    def test_identical_systems_not_significant(self):
        pairs = [(True, True)] * 30 + [(False, False)] * 30
        result = paired_bootstrap(pairs, n_resamples=500)
        assert result.delta == 0.0
        assert result.p_value == 1.0
        assert not result.significant()

    def test_noise_level_difference_not_significant(self):
        # One extra win out of 60 is indistinguishable from noise.
        pairs = [(True, False)] + [(True, True)] * 29 + [(False, False)] * 30
        result = paired_bootstrap(pairs, n_resamples=500)
        assert not result.significant()

    def test_deterministic(self):
        pairs = [(True, False)] * 5 + [(False, True)] * 3 + [(True, True)] * 10
        a = paired_bootstrap(pairs, seed=3)
        b = paired_bootstrap(pairs, seed=3)
        assert a == b

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap([])

    def test_result_fields(self):
        result = paired_bootstrap([(True, False)] * 10, n_resamples=100)
        assert isinstance(result, SignificanceResult)
        assert result.n_pairs == 10
        assert result.n_resamples == 100


class TestSystemComparison:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_test_corpus()

    def test_xsdf_beats_random_significantly_on_group1(self, corpus, lexicon):
        xsdf = make_system_factory("xsdf-concept-d1", lexicon)()
        randomly = make_system_factory("random", lexicon)()
        result = compare_systems(
            xsdf, randomly, corpus.by_group(1), lexicon, n_resamples=400,
        )
        assert result.delta > 0.2
        assert result.significant()

    def test_pairs_align_on_same_nodes(self, corpus, lexicon):
        a = make_system_factory("first-sense", lexicon)()
        b = make_system_factory("random", lexicon)()
        docs = corpus.by_dataset("cd_catalog")[:2]
        pairs = paired_outcomes(a, b, docs, lexicon)
        # 12-13 nodes per document, every one paired.
        assert 24 <= len(pairs) <= 26

    def test_system_compared_to_itself(self, corpus, lexicon):
        system = make_system_factory("first-sense", lexicon)()
        result = compare_systems(
            system, system, corpus.by_dataset("food_menu")[:2], lexicon,
            n_resamples=100,
        )
        assert result.delta == 0.0
        assert not result.significant()
