"""Unit tests for the linguistic pre-processing pipeline (Section 3.2)."""

from __future__ import annotations

from repro.linguistics.pipeline import LinguisticPipeline, default_pipeline
from repro.linguistics.stopwords import STOP_WORDS, is_stop_word, remove_stop_words


class TestStopWords:
    def test_common_words_flagged(self):
        for word in ("the", "of", "and", "by", "is"):
            assert is_stop_word(word)

    def test_case_insensitive(self):
        assert is_stop_word("The")

    def test_content_words_kept(self):
        for word in ("movie", "cast", "director"):
            assert not is_stop_word(word)

    def test_remove_preserves_order(self):
        assert remove_stop_words(["the", "cast", "of", "the", "movie"]) == [
            "cast", "movie",
        ]

    def test_frozen(self):
        assert isinstance(STOP_WORDS, frozenset)


class TestLabelProcessing:
    def test_simple_known_word_untouched(self, lexicon):
        pipeline = default_pipeline(lexicon)
        assert pipeline.process_label("director") == ["director"]

    def test_compound_matching_single_concept(self, lexicon):
        # "first name" is one synset in the lexicon -> one token.
        pipeline = default_pipeline(lexicon)
        assert pipeline.process_label("FirstName") == ["first name"]

    def test_compound_without_single_match_kept_together(self, lexicon):
        pipeline = default_pipeline(lexicon)
        tokens = pipeline.process_label("Directed_By")
        # "by" is a stop word; "directed" survives alone.
        assert tokens == ["directed"]

    def test_true_compound_two_tokens(self, lexicon):
        # No "stage door" concept: both tokens processed separately but
        # returned together for a single node label.
        pipeline = default_pipeline(lexicon)
        assert pipeline.process_label("stage_door") == ["stage", "door"]

    def test_unknown_word_stemmed_to_known(self, lexicon):
        pipeline = default_pipeline(lexicon)
        # "movies" is not a lexicon word but its stem "movi"... is not
        # either; "films" stems to "film" which IS known.
        assert pipeline.process_label("films") == ["film"]

    def test_unknown_unstemmable_word_kept(self, lexicon):
        pipeline = default_pipeline(lexicon)
        assert pipeline.process_label("zzzz") == ["zzzz"]

    def test_stemming_can_be_disabled(self, lexicon):
        pipeline = LinguisticPipeline(known=lexicon.has_word, stem_unknown=False)
        assert pipeline.process_label("films") == ["films"]

    def test_without_network_everything_unknown(self):
        pipeline = LinguisticPipeline()
        # No lexicon: stems are only used when they hit the lexicon, so
        # the original lowercase word is kept.
        assert pipeline.process_label("Movies") == ["movies"]


class TestValueProcessing:
    def test_stop_words_removed(self, lexicon):
        pipeline = default_pipeline(lexicon)
        tokens = pipeline.process_value(
            "A wheelchair bound photographer spies on his neighbors"
        )
        assert "a" not in tokens and "on" not in tokens and "his" not in tokens
        assert "wheelchair" in tokens and "photographer" in tokens

    def test_values_normalized_to_lexicon_forms(self, lexicon):
        pipeline = default_pipeline(lexicon)
        tokens = pipeline.process_value("neighbors")
        assert tokens == ["neighbor"]

    def test_empty_value(self, lexicon):
        pipeline = default_pipeline(lexicon)
        assert pipeline.process_value("") == []

    def test_adapters_are_bound_methods(self, lexicon):
        pipeline = default_pipeline(lexicon)
        assert pipeline.label_processor()("director") == ["director"]
        assert pipeline.value_processor()("Kelly") == ["kelly"]
