"""Property-based tests for the linguistic layer."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.linguistics.pipeline import LinguisticPipeline
from repro.linguistics.stemmer import stem
from repro.linguistics.stopwords import STOP_WORDS, remove_stop_words
from repro.linguistics.tokenizer import split_tag_name, split_text_value

_words = st.from_regex(r"[a-z]{1,10}", fullmatch=True)


@given(_words)
def test_stemming_reaches_a_fixed_point(word):
    """Porter is not idempotent — step 5a strips one trailing ``e`` per
    pass, so ``abeee`` needs three passes to settle — but repeated
    application must reach a fixed point within ``len(word)`` passes
    and never grow the word (catches rule-cascade regressions)."""
    current = stem(word)
    assert len(current) <= len(word)
    for _ in range(len(word) + 1):
        nxt = stem(current)
        if nxt == current:
            break
        assert len(nxt) <= len(current)
        current = nxt
    assert stem(current) == current


@given(st.lists(_words, max_size=12))
def test_stop_word_removal_is_idempotent_and_ordered(tokens):
    removed = remove_stop_words(tokens)
    assert remove_stop_words(removed) == removed
    # Order preserved: removed is a subsequence of tokens.
    iterator = iter(tokens)
    assert all(any(token == item for item in iterator) for token in removed)
    assert not set(removed) & STOP_WORDS


@given(st.lists(_words, min_size=1, max_size=4))
def test_tag_splitting_recovers_underscore_joins(parts):
    assert split_tag_name("_".join(parts)) == parts


@given(st.lists(_words, min_size=1, max_size=6))
def test_value_splitting_recovers_space_joins(parts):
    assert split_text_value(" ".join(parts)) == parts


@given(_words)
def test_pipeline_label_output_is_normalized(word):
    pipeline = LinguisticPipeline()
    for token in pipeline.process_label(word):
        assert token == token.lower()
        assert token.strip() == token


@given(st.text(max_size=40))
def test_pipeline_value_processing_never_raises(text):
    pipeline = LinguisticPipeline()
    tokens = pipeline.process_value(text)
    assert all(isinstance(token, str) and token for token in tokens)


@given(_words)
def test_pipeline_deterministic(word):
    pipeline = LinguisticPipeline()
    assert pipeline.process_label(word) == pipeline.process_label(word)
