"""Unit tests for the Porter stemmer against the classic reference pairs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linguistics.stemmer import PorterStemmer, _measure, stem

#: Reference pairs from Porter's 1980 paper, grouped by rule step.
REFERENCE_PAIRS = [
    # step 1a
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    # step 1b
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    # step 1c
    ("happy", "happi"),
    ("sky", "sky"),
    # step 2
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    # step 3
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    # step 4
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    # step 5
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", REFERENCE_PAIRS)
def test_reference_pairs(word, expected):
    assert stem(word) == expected


class TestMeasure:
    @pytest.mark.parametrize(
        "word,m",
        [
            ("tr", 0), ("ee", 0), ("tree", 0), ("y", 0), ("by", 0),
            ("trouble", 1), ("oats", 1), ("trees", 1), ("ivy", 1),
            ("troubles", 2), ("private", 2), ("oaten", 2), ("orrery", 2),
        ],
    )
    def test_porter_measure_examples(self, word, m):
        assert _measure(word) == m


class TestEdgeCases:
    def test_short_words_untouched(self):
        assert stem("a") == "a"
        assert stem("is") == "is"

    def test_stemmer_instance_equivalent_to_module_function(self):
        stemmer = PorterStemmer()
        assert stemmer.stem("relational") == stem("relational")

    def test_domain_vocabulary(self):
        # Words the pipeline relies on for lexicon lookup.
        assert stem("movies") == "movi"
        assert stem("films") == "film"
        assert stem("actors") == "actor"
        assert stem("proceedings") == "proceed"
        assert stem("personae") == "persona"


@given(st.from_regex(r"[a-z]{1,12}", fullmatch=True))
def test_stem_never_longer_than_word(word):
    assert len(stem(word)) <= len(word)


@given(st.from_regex(r"[a-z]{3,12}", fullmatch=True))
def test_stem_is_lowercase_alpha(word):
    result = stem(word)
    assert result.isalpha() and result == result.lower()
