"""Unit tests for tag-name and text-value tokenization."""

from __future__ import annotations

import pytest

from repro.linguistics.tokenizer import (
    split_camel_case,
    split_tag_name,
    split_text_value,
)


class TestCamelCase:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("FirstName", ["First", "Name"]),
            ("firstName", ["first", "Name"]),
            ("first", ["first"]),
            ("FIRST", ["FIRST"]),
            ("XMLFile", ["XML", "File"]),
            ("", []),
            ("aB", ["a", "B"]),
        ],
    )
    def test_split(self, word, expected):
        assert split_camel_case(word) == expected


class TestTagNames:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("director", ["director"]),
            ("Directed_By", ["directed", "by"]),
            ("FirstName", ["first", "name"]),
            ("first-name", ["first", "name"]),
            ("ns:tag", ["ns", "tag"]),
            ("movie.title", ["movie", "title"]),
            ("YEAR", ["year"]),
            ("__weird__", ["weird"]),
        ],
    )
    def test_split(self, name, expected):
        assert split_tag_name(name) == expected

    def test_all_lowercase_output(self):
        assert all(
            token == token.lower() for token in split_tag_name("MixedCASEName")
        )


class TestTextValues:
    def test_simple_sentence(self):
        assert split_text_value("A wheelchair bound photographer") == [
            "a", "wheelchair", "bound", "photographer",
        ]

    def test_punctuation_separates(self):
        assert split_text_value("well-known; famous, popular!") == [
            "well", "known", "famous", "popular",
        ]

    def test_numbers_kept(self):
        assert split_text_value("released in 1954") == [
            "released", "in", "1954",
        ]

    def test_empty_and_whitespace(self):
        assert split_text_value("") == []
        assert split_text_value("   \n\t ") == []

    def test_unicode_safe(self):
        assert split_text_value("café crème") == ["café", "crème"]
