"""Shared fixtures for the runtime subsystem tests."""

from __future__ import annotations

import pytest

from repro.datasets import generate_test_corpus
from repro.runtime import SemanticIndex
from repro.semnet.generator import GeneratorConfig, generate_network


@pytest.fixture(scope="session")
def corpus():
    """The full generated test collection (all ten datasets)."""
    return generate_test_corpus()


@pytest.fixture(scope="session")
def synthetic_network():
    """A seed-deterministic synthetic semantic network."""
    return generate_network(
        GeneratorConfig(n_concepts=200, mean_polysemy=2.5, seed=42)
    )


@pytest.fixture(scope="session")
def lexicon_index(lexicon):
    """A SemanticIndex over the curated lexicon (shared, read-only)."""
    return SemanticIndex(lexicon)
