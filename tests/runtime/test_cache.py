"""Unit tests for the bounded LRU cache."""

from __future__ import annotations

import pytest

from repro.runtime import LRUCache


class TestLRUSemantics:
    def test_basic_set_get(self):
        cache = LRUCache(maxsize=4)
        cache["a"] = 1
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_eviction_drops_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache["a"] = 1
        cache["b"] = 2
        cache["c"] = 3  # evicts "a"
        assert "a" not in cache
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_read_refreshes_recency(self):
        cache = LRUCache(maxsize=2)
        cache["a"] = 1
        cache["b"] = 2
        cache.get("a")     # "b" is now the LRU entry
        cache["c"] = 3     # evicts "b", not "a"
        assert "a" in cache
        assert "b" not in cache

    def test_overwrite_refreshes_recency_without_eviction(self):
        cache = LRUCache(maxsize=2)
        cache["a"] = 1
        cache["b"] = 2
        cache["a"] = 10    # no eviction: key already present
        assert cache.evictions == 0
        cache["c"] = 3     # evicts "b"
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_unbounded_mode(self):
        cache = LRUCache(maxsize=None)
        for i in range(10_000):
            cache[i] = i
        assert len(cache) == 10_000
        assert cache.evictions == 0

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)
        with pytest.raises(ValueError):
            LRUCache(maxsize=-3)

    def test_clear_keeps_counters(self):
        cache = LRUCache(maxsize=4)
        cache["a"] = 1
        cache.get("a")
        cache.get("zzz")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        assert cache.misses == 1


class TestCounters:
    def test_hit_miss_counting(self):
        cache = LRUCache(maxsize=4)
        assert cache.hit_rate == 0.0
        cache["k"] = "v"
        assert cache.get("k") == "v"
        assert cache.get("absent") is None
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_cached_falsy_values_count_as_hits(self):
        cache = LRUCache(maxsize=4)
        cache["zero"] = 0.0
        assert cache.get("zero") == 0.0
        assert cache.hits == 1
        assert cache.misses == 0

    def test_get_or_compute(self):
        cache = LRUCache(maxsize=4)
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.get_or_compute("k", compute) == 42
        assert cache.get_or_compute("k", compute) == 42
        assert len(calls) == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_stats_shape(self):
        cache = LRUCache(maxsize=8)
        cache["a"] = 1
        cache.get("a")
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["maxsize"] == 8
        assert stats["hits"] == 1
        assert stats["misses"] == 0
        assert stats["evictions"] == 0
        assert stats["hit_rate"] == 1.0
