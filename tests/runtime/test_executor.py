"""Batch executor determinism, equality with the seed pipeline, faults.

Two contracts are pinned here:

* the runtime (index + caches, serial or parallel) chooses **identical
  senses** to the seed implementation — checked per dataset across all
  ten generated datasets (equality, not tolerance);
* parallel output is **byte-identical** to serial output for the same
  corpus (JSONL line comparison).
"""

from __future__ import annotations

import io

import pytest

from repro import XSDF, XSDFConfig
from repro.runtime import BatchDocument, BatchExecutor, MetricsRegistry


def _one_doc_per_dataset(corpus):
    docs = []
    for dataset in corpus.datasets():
        docs.append(corpus.by_dataset(dataset)[0])
    return docs


class TestSeedEquality:
    def test_identical_sense_choices_on_all_ten_datasets(
        self, lexicon, corpus
    ):
        """Runtime path == seed path, one document per dataset, d=2."""
        docs = _one_doc_per_dataset(corpus)
        assert len(docs) == 10
        executor = BatchExecutor(lexicon, XSDFConfig(), workers=1)
        records = executor.run([(d.name, d.xml) for d in docs])
        for doc, record in zip(docs, records):
            seed_result = XSDF(lexicon, XSDFConfig()).disambiguate_document(
                doc.xml
            )
            assert record.ok, record.error
            assert record.result == seed_result.to_dict(), doc.name

    def test_uncached_executor_matches_indexed(self, lexicon, corpus):
        docs = [(d.name, d.xml) for d in _one_doc_per_dataset(corpus)[:4]]
        indexed = BatchExecutor(lexicon, XSDFConfig(), workers=1)
        uncached = BatchExecutor(
            lexicon, XSDFConfig(), workers=1, use_index=False
        )
        lines_a = [r.to_json_line() for r in indexed.run(docs)]
        lines_b = [r.to_json_line() for r in uncached.run(docs)]
        assert lines_a == lines_b


class TestParallelDeterminism:
    def test_parallel_byte_identical_to_serial(self, lexicon, corpus):
        docs = [(d.name, d.xml) for d in _one_doc_per_dataset(corpus)[:6]]
        serial = BatchExecutor(lexicon, XSDFConfig(), workers=1)
        parallel = BatchExecutor(
            lexicon, XSDFConfig(), workers=2, chunk_size=1
        )
        serial_out = io.StringIO()
        parallel_out = io.StringIO()
        serial.run_to_jsonl(docs, serial_out)
        parallel.run_to_jsonl(docs, parallel_out)
        assert serial_out.getvalue() == parallel_out.getvalue()

    def test_results_in_input_order(self, lexicon, corpus):
        docs = [(d.name, d.xml) for d in _one_doc_per_dataset(corpus)[:5]]
        reversed_docs = list(reversed(docs))
        executor = BatchExecutor(lexicon, XSDFConfig(), workers=2)
        records = executor.run(reversed_docs)
        assert [r.name for r in records] == [name for name, _ in reversed_docs]


class TestFaultIsolation:
    def test_bad_document_does_not_sink_batch(self, lexicon, figure1_xml):
        executor = BatchExecutor(lexicon, XSDFConfig(), workers=1)
        records = executor.run([
            ("good-1", figure1_xml),
            ("broken", "<unclosed><tag>"),
            ("good-2", figure1_xml),
        ])
        assert [r.ok for r in records] == [True, False, True]
        assert records[1].result is None
        assert records[1].error
        # The two good copies are identical documents -> identical output.
        assert records[0].result == records[2].result

    def test_invalid_parameters_rejected(self, lexicon):
        with pytest.raises(ValueError):
            BatchExecutor(lexicon, workers=0)
        with pytest.raises(ValueError):
            BatchExecutor(lexicon, chunk_size=0)
        with pytest.raises(ValueError):
            BatchExecutor(lexicon, cache_size=0)


class TestCachingBehavior:
    def test_repeated_documents_hit_the_result_cache(
        self, lexicon, figure1_xml
    ):
        metrics = MetricsRegistry()
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=1, metrics=metrics
        )
        docs = [BatchDocument(f"doc-{i}", figure1_xml) for i in range(5)]
        records = executor.run(docs)
        assert all(r.ok for r in records)
        assert len({r.to_json_line() for r in records}) == len(docs)  # names differ
        assert all(r.result["assignments"] for r in records)
        # Identical text -> identical result payload, names aside.
        assert all(r.result == records[0].result for r in records)
        report = metrics.report()
        # One full pipeline run, four result-cache hits.
        assert report["counters"]["documents"] == 1
        assert report["caches"]["documents"]["hits"] == 4

    def test_executor_metrics_report(self, lexicon, figure1_xml):
        metrics = MetricsRegistry()
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=1, metrics=metrics
        )
        executor.run([("a", figure1_xml), ("b", figure1_xml)])
        report = metrics.report()
        assert report["counters"]["batches"] == 1
        assert report["counters"]["batch_documents"] == 2
        assert report["counters"]["batch_failures"] == 0
        assert "similarity_pairs" in report["caches"]
        assert "sense_scores" in report["caches"]
        assert report["stages"]["batch"]["count"] == 1
