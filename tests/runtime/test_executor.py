"""Batch executor determinism, equality with the seed pipeline, faults.

Two contracts are pinned here:

* the runtime (index + caches, serial or parallel) chooses **identical
  senses** to the seed implementation — checked per dataset across all
  ten generated datasets (equality, not tolerance);
* parallel output is **byte-identical** to serial output for the same
  corpus (JSONL line comparison).
"""

from __future__ import annotations

import io

import pytest

from repro import XSDF, XSDFConfig
from repro.runtime import (
    BatchDocument,
    BatchExecutor,
    MetricsRegistry,
    PackedIndex,
    SemanticIndex,
)
from repro.runtime import executor as executor_module


def _one_doc_per_dataset(corpus):
    docs = []
    for dataset in corpus.datasets():
        docs.append(corpus.by_dataset(dataset)[0])
    return docs


class TestSeedEquality:
    def test_identical_sense_choices_on_all_ten_datasets(
        self, lexicon, corpus
    ):
        """Runtime path == seed path, one document per dataset, d=2."""
        docs = _one_doc_per_dataset(corpus)
        assert len(docs) == 10
        executor = BatchExecutor(lexicon, XSDFConfig(), workers=1)
        records = executor.run([(d.name, d.xml) for d in docs])
        for doc, record in zip(docs, records):
            seed_result = XSDF(lexicon, XSDFConfig()).disambiguate_document(
                doc.xml
            )
            assert record.ok, record.error
            assert record.result == seed_result.to_dict(), doc.name

    def test_uncached_executor_matches_indexed(self, lexicon, corpus):
        docs = [(d.name, d.xml) for d in _one_doc_per_dataset(corpus)[:4]]
        indexed = BatchExecutor(lexicon, XSDFConfig(), workers=1)
        uncached = BatchExecutor(
            lexicon, XSDFConfig(), workers=1, use_index=False
        )
        lines_a = [r.to_json_line() for r in indexed.run(docs)]
        lines_b = [r.to_json_line() for r in uncached.run(docs)]
        assert lines_a == lines_b


class TestParallelDeterminism:
    def test_parallel_byte_identical_to_serial(self, lexicon, corpus):
        docs = [(d.name, d.xml) for d in _one_doc_per_dataset(corpus)[:6]]
        serial = BatchExecutor(lexicon, XSDFConfig(), workers=1)
        parallel = BatchExecutor(
            lexicon, XSDFConfig(), workers=2, chunk_size=1,
            oversubscribe=True,  # exercise the real pool on 1-CPU hosts
        )
        serial_out = io.StringIO()
        parallel_out = io.StringIO()
        serial.run_to_jsonl(docs, serial_out)
        parallel.run_to_jsonl(docs, parallel_out)
        assert serial_out.getvalue() == parallel_out.getvalue()

    def test_results_in_input_order(self, lexicon, corpus):
        docs = [(d.name, d.xml) for d in _one_doc_per_dataset(corpus)[:5]]
        reversed_docs = list(reversed(docs))
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=2, oversubscribe=True
        )
        records = executor.run(reversed_docs)
        assert [r.name for r in records] == [name for name, _ in reversed_docs]

    def test_byte_identical_across_index_and_worker_modes(
        self, lexicon, corpus
    ):
        """{serial, parallel} x {dict-index, packed-index} all agree."""
        docs = [(d.name, d.xml) for d in _one_doc_per_dataset(corpus)[:4]]
        outputs = []
        for workers in (1, 2):
            for packed in (False, True):
                executor = BatchExecutor(
                    lexicon, XSDFConfig(), workers=workers, packed=packed,
                    oversubscribe=True,
                )
                out = io.StringIO()
                executor.run_to_jsonl(docs, out)
                outputs.append(out.getvalue())
        assert all(output == outputs[0] for output in outputs)

    def test_parent_index_is_built_once_and_shared(self, lexicon, corpus):
        docs = [(d.name, d.xml) for d in _one_doc_per_dataset(corpus)[:2]]
        executor = BatchExecutor(lexicon, XSDFConfig(), workers=1)
        executor.run(docs)
        index = executor._index
        assert isinstance(index, PackedIndex)
        executor.run(docs)
        assert executor._index is index  # same object, not rebuilt
        dict_mode = BatchExecutor(
            lexicon, XSDFConfig(), workers=1, packed=False
        )
        dict_mode.run(docs)
        assert isinstance(dict_mode._index, SemanticIndex)


class TestAdaptiveChunking:
    def test_counts_dominate_for_small_documents(self, lexicon):
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=2, oversubscribe=True
        )
        docs = [BatchDocument(f"d{i}", "<a/>") for i in range(80)]
        # ceil(80 / (4*2)) = 10, far below the byte cap for tiny docs.
        assert executor._auto_chunk(docs) == 10

    def test_byte_cap_shrinks_chunks_for_large_documents(self, lexicon):
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=2, oversubscribe=True
        )
        big = "<a>" + "x" * (2 * executor_module.TARGET_CHUNK_BYTES) + "</a>"
        docs = [BatchDocument(f"d{i}", big) for i in range(80)]
        assert executor._auto_chunk(docs) == 1


class TestPoolFailureDegrade:
    def test_map_failure_degrades_to_serial(
        self, lexicon, figure1_xml, monkeypatch
    ):
        """A mid-batch pool.map blow-up must not sink the run."""

        class _ExplodingPool:
            def __init__(self, *args, **kwargs):
                # Run the initializer like a real pool would, so the
                # degrade happens after worker setup, not instead of it.
                init = kwargs.get("initializer")
                if init is not None:
                    init(*kwargs.get("initargs", ()))

            def map(self, fn, tasks, chunksize=None):
                raise RuntimeError("worker crashed mid-batch")

            def close(self):
                pass

            def join(self):
                pass

        import multiprocessing

        monkeypatch.setattr(multiprocessing, "Pool", _ExplodingPool)
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=2, oversubscribe=True
        )
        docs = [("a", figure1_xml), ("b", figure1_xml)]
        records = executor.run(docs)
        assert [r.name for r in records] == ["a", "b"]
        assert all(r.ok for r in records)
        # And the serial result equals an untouched serial executor's.
        serial = BatchExecutor(lexicon, XSDFConfig(), workers=1)
        assert [r.to_json_line() for r in records] == \
            [r.to_json_line() for r in serial.run(docs)]

    def test_pool_creation_failure_degrades_to_serial(
        self, lexicon, figure1_xml, monkeypatch
    ):
        import multiprocessing

        def _no_pool(*args, **kwargs):
            raise OSError("no process spawning here")

        monkeypatch.setattr(multiprocessing, "Pool", _no_pool)
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=2, oversubscribe=True
        )
        records = executor.run([("a", figure1_xml), ("b", figure1_xml)])
        assert all(r.ok for r in records)


class TestFaultIsolation:
    def test_bad_document_does_not_sink_batch(self, lexicon, figure1_xml):
        executor = BatchExecutor(lexicon, XSDFConfig(), workers=1)
        records = executor.run([
            ("good-1", figure1_xml),
            ("broken", "<unclosed><tag>"),
            ("good-2", figure1_xml),
        ])
        assert [r.ok for r in records] == [True, False, True]
        assert records[1].result is None
        assert records[1].error
        # The two good copies are identical documents -> identical output.
        assert records[0].result == records[2].result

    def test_invalid_parameters_rejected(self, lexicon):
        with pytest.raises(ValueError):
            BatchExecutor(lexicon, workers=0)
        with pytest.raises(ValueError):
            BatchExecutor(lexicon, chunk_size=0)
        with pytest.raises(ValueError):
            BatchExecutor(lexicon, cache_size=0)


class TestCachingBehavior:
    def test_repeated_documents_hit_the_result_cache(
        self, lexicon, figure1_xml
    ):
        metrics = MetricsRegistry()
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=1, metrics=metrics
        )
        docs = [BatchDocument(f"doc-{i}", figure1_xml) for i in range(5)]
        records = executor.run(docs)
        assert all(r.ok for r in records)
        assert len({r.to_json_line() for r in records}) == len(docs)  # names differ
        assert all(r.result["assignments"] for r in records)
        # Identical text -> identical result payload, names aside.
        assert all(r.result == records[0].result for r in records)
        report = metrics.report()
        # One full pipeline run, four result-cache hits.
        assert report["counters"]["documents"] == 1
        assert report["caches"]["documents"]["hits"] == 4

    def test_executor_metrics_report(self, lexicon, figure1_xml):
        metrics = MetricsRegistry()
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=1, metrics=metrics
        )
        executor.run([("a", figure1_xml), ("b", figure1_xml)])
        report = metrics.report()
        assert report["counters"]["batches"] == 1
        assert report["counters"]["batch_documents"] == 2
        assert report["counters"]["batch_failures"] == 0
        assert "similarity_pairs" in report["caches"]
        assert "sense_scores" in report["caches"]
        assert report["stages"]["batch"]["count"] == 1
