"""Deterministic fault injection: schedules, determinism, corruption.

The injector's whole value is that its decisions are a pure function of
``(seed, spec index, document name, attempt)`` — the parent and every
worker must agree on exactly which documents fault regardless of
dispatch order or process identity.  These tests pin that property,
the per-spec knobs (match / rate / max_attempt), and the typed errors
produced by corrupting a packed payload.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.runtime import PackedIndex, PackedIndexError
from repro.runtime.faults import (
    BrokenMemo,
    FaultInjector,
    FaultSpec,
    FaultyKernel,
    InjectedFault,
)
from repro.runtime.pack import PackedIndexCRCError, PackedIndexTruncatedError


def _fault_map(injector, names, attempts=(1, 2, 3)):
    """{(name, attempt): fired?} decision table for a schedule."""
    table = {}
    for name in names:
        for attempt in attempts:
            try:
                injector.before_document(name, attempt)
            except InjectedFault:
                table[(name, attempt)] = True
            else:
                table[(name, attempt)] = False
    return table


def _decision_table_in_subprocess(seed, specs, names):
    injector = FaultInjector(seed, specs)
    return _fault_map(injector, names)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="explode")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="raise", rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(kind="raise", rate=-0.1)

    def test_bad_max_attempt_and_delay_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="raise", max_attempt=0)
        with pytest.raises(ValueError):
            FaultSpec(kind="slow", delay_s=-1.0)


class TestDeterminism:
    NAMES = [f"doc-{i:03d}" for i in range(40)]

    def test_same_seed_same_schedule(self):
        specs = [FaultSpec.raising(rate=0.3)]
        a = _fault_map(FaultInjector(7, specs), self.NAMES)
        b = _fault_map(FaultInjector(7, specs), self.NAMES)
        assert a == b

    def test_decisions_independent_of_query_order(self):
        specs = [FaultSpec.raising(rate=0.3)]
        forward = _fault_map(FaultInjector(7, specs), self.NAMES)
        backward = _fault_map(
            FaultInjector(7, specs), list(reversed(self.NAMES))
        )
        assert forward == backward

    def test_different_seeds_differ(self):
        specs = [FaultSpec.raising(rate=0.5)]
        a = _fault_map(FaultInjector(1, specs), self.NAMES)
        b = _fault_map(FaultInjector(2, specs), self.NAMES)
        assert a != b  # 2^-40-ish odds of colliding on 40 docs

    def test_rate_is_roughly_respected(self):
        specs = [FaultSpec.raising(rate=0.25)]
        names = [f"doc-{i:04d}" for i in range(400)]
        table = _fault_map(FaultInjector(11, specs), names, attempts=(1,))
        fired = sum(table.values())
        assert 50 <= fired <= 150  # 100 expected; generous determinism band

    def test_same_decisions_in_a_subprocess(self):
        """Parent and worker agree — the property the parity gate needs."""
        specs = (FaultSpec.raising(rate=0.4), FaultSpec.flaky("doc-00*"))
        parent = _fault_map(FaultInjector(13, specs), self.NAMES)
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(1) as pool:
            child = pool.apply(
                _decision_table_in_subprocess, (13, specs, self.NAMES)
            )
        assert parent == child

    def test_injector_is_picklable(self):
        injector = FaultInjector(3, [FaultSpec.corrupt_packed()])
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.seed == 3
        assert clone.specs == injector.specs


class TestSchedules:
    def test_match_pattern_limits_scope(self):
        injector = FaultInjector(0, [FaultSpec.raising(match="bad-*")])
        with pytest.raises(InjectedFault):
            injector.before_document("bad-doc", 1)
        injector.before_document("good-doc", 1)  # no raise

    def test_flaky_then_recover(self):
        injector = FaultInjector(0, [FaultSpec.flaky(fail_attempts=2)])
        for attempt in (1, 2):
            with pytest.raises(InjectedFault) as excinfo:
                injector.before_document("doc", attempt)
            assert excinfo.value.transient
        injector.before_document("doc", 3)  # recovered

    def test_permanent_fault_is_marked_non_transient(self):
        injector = FaultInjector(0, [FaultSpec.raising(transient=False)])
        with pytest.raises(InjectedFault) as excinfo:
            injector.before_document("doc", 1)
        assert not excinfo.value.transient

    def test_slow_spec_sleeps_then_recovers(self, monkeypatch):
        naps = []
        monkeypatch.setattr(
            "repro.runtime.faults.time.sleep", naps.append
        )
        injector = FaultInjector(
            0, [FaultSpec.slow(delay_s=0.2, max_attempt=1)]
        )
        injector.before_document("doc", 1)
        assert naps == [0.2]
        injector.before_document("doc", 2)  # re-dispatch is fast
        assert naps == [0.2]

    def test_empty_schedule_is_a_no_op(self):
        injector = FaultInjector(0)
        injector.before_document("doc", 1)
        assert not injector.corrupts_packed


class TestCorruptPacked:
    def test_corrupt_bytes_is_deterministic_and_typed(self, lexicon):
        blob = PackedIndex(lexicon).to_bytes()
        injector = FaultInjector(5, [FaultSpec.corrupt_packed()])
        mutated = injector.corrupt_bytes(blob)
        assert mutated != blob
        assert mutated == injector.corrupt_bytes(blob)  # same seed, same flip
        assert mutated[:4] == b"RXPK"  # header left intact -> typed error
        with pytest.raises(PackedIndexError) as excinfo:
            PackedIndex.from_bytes(mutated)
        assert isinstance(
            excinfo.value, (PackedIndexCRCError, PackedIndexTruncatedError)
        )

    def test_no_corrupt_spec_leaves_bytes_alone(self, lexicon):
        blob = PackedIndex(lexicon).to_bytes()
        injector = FaultInjector(5, [FaultSpec.raising()])
        assert injector.corrupt_bytes(blob) is blob
        assert not injector.corrupts_packed


class TestSpecParse:
    def test_bare_kind(self):
        spec = FaultSpec.parse("bitrot")
        assert (spec.kind, spec.match, spec.rate) == ("bitrot", "*", 1.0)

    def test_kind_and_match(self):
        spec = FaultSpec.parse("kill_midbatch:*doc-03*")
        assert spec.kind == "kill_midbatch"
        assert spec.match == "*doc-03*"
        assert spec.rate == 1.0

    def test_kind_match_and_rate(self):
        spec = FaultSpec.parse("raise:*.xml:0.25")
        assert (spec.kind, spec.match, spec.rate) == ("raise", "*.xml", 0.25)

    def test_colons_in_match_fold_back_when_tail_is_not_a_rate(self):
        # Paths contain colons; only a float-parseable tail is a rate.
        spec = FaultSpec.parse("kill_midbatch:C:*docs*:final.xml")
        assert spec.match == "C:*docs*:final.xml"
        assert spec.rate == 1.0
        with_rate = FaultSpec.parse("kill_midbatch:C:*docs*:0.5")
        assert with_rate.match == "C:*docs*"
        assert with_rate.rate == 0.5

    def test_bad_kind_and_bad_rate_raise_with_the_spec_text(self):
        with pytest.raises(ValueError, match="explode"):
            FaultSpec.parse("explode:*")
        with pytest.raises(ValueError, match="bad fault spec"):
            FaultSpec.parse("raise:*:2.5")

    def test_constructors_for_the_new_kinds(self):
        kill = FaultSpec.kill_midbatch(match="*batch*")
        assert kill.kind == "kill_midbatch" and kill.match == "*batch*"
        rot = FaultSpec.bitrot(rate=0.5)
        assert rot.kind == "bitrot" and rot.rate == 0.5


class TestBitrotShard:
    def _shard(self, tmp_path, lexicon) -> str:
        from repro.runtime.store import write_shard

        path = str(tmp_path / "lexicon.rxpd")
        write_shard(PackedIndex(lexicon), path,
                    fingerprint=lexicon.fingerprint())
        return path

    def test_flip_is_seeded_in_body_and_in_place(self, tmp_path, lexicon):
        path = self._shard(tmp_path, lexicon)
        with open(path, "rb") as fh:
            before = fh.read()
        injector = FaultInjector(42, [FaultSpec.bitrot()])
        offset = injector.bitrot_shard(path)
        # Past the 32-byte disk header: attach-time magic checks still
        # pass, only the scrubber's body CRC can catch the flip.
        assert offset is not None and offset >= 32
        assert offset == FaultInjector(
            42, [FaultSpec.bitrot()]
        ).bitrot_shard(self._shard(tmp_path, lexicon))  # deterministic
        with open(path, "rb") as fh:
            after = fh.read()
        assert len(after) == len(before)
        assert after[:32] == before[:32]
        diff = [i for i, (a, b) in enumerate(zip(before, after)) if a != b]
        assert diff == [offset]
        assert after[offset] == before[offset] ^ 0xFF

    def test_match_patterns_the_basename(self, tmp_path, lexicon):
        path = self._shard(tmp_path, lexicon)
        miss = FaultInjector(42, [FaultSpec.bitrot(match="other-*.rxpd")])
        assert miss.bitrot_shard(path) is None
        hit = FaultInjector(42, [FaultSpec.bitrot(match="lexicon.*")])
        assert hit.bitrot_shard(path) is not None

    def test_no_bitrot_spec_is_a_no_op(self, tmp_path, lexicon):
        path = self._shard(tmp_path, lexicon)
        with open(path, "rb") as fh:
            before = fh.read()
        injector = FaultInjector(42, [FaultSpec.raising()])
        assert injector.bitrot_shard(path) is None
        with open(path, "rb") as fh:
            assert fh.read() == before

    def test_tiny_file_is_left_alone(self, tmp_path):
        stub = tmp_path / "stub.rxpd"
        stub.write_bytes(b"\x00" * 33)
        injector = FaultInjector(42, [FaultSpec.bitrot()])
        assert injector.bitrot_shard(str(stub)) is None


class TestKillMidbatchSpec:
    # The fault itself SIGKILLs the process, so only the schedule logic
    # is testable in-process; the actual kill (and the resume that
    # follows) is proven by the kill-resume leg of the CI chaos gate.
    def test_fires_only_for_matching_documents(self):
        injector = FaultInjector(42, [
            FaultSpec.kill_midbatch(match="*doc-05*")
        ])
        spec = injector.specs[0]
        assert injector._fires(0, spec, "corpus/doc-05.xml")
        assert not injector._fires(0, spec, "corpus/doc-06.xml")


class TestDoubles:
    def test_faulty_kernel_raises_then_delegates(self, lexicon):
        packed = PackedIndex(lexicon)
        proxy = FaultyKernel(packed, fail_calls=1)
        concept = next(iter(lexicon)).id
        with pytest.raises(PackedIndexCRCError):
            proxy.pair_terms(concept, concept)
        assert proxy.pair_terms(concept, concept) == \
            packed.pair_terms(concept, concept)
        # Non-faulted attributes always delegate.
        assert proxy.depth(concept) == packed.depth(concept)

    def test_broken_memo_fails_signature_then_recovers(self):
        class _Memo:
            def signature(self, sphere):
                return ("sig", sphere)

        proxy = BrokenMemo(_Memo(), fail_calls=1)
        with pytest.raises(RuntimeError):
            proxy.signature("s")
        assert proxy.signature("s") == ("sig", "s")
