"""SemanticIndex correctness: indexed paths must be bit-identical.

The index is a pure accelerator — every query it serves and every
similarity score computed through it must *equal* (``==``, not
approximately) the value the uncached network walk produces, on both
the curated lexicon and a synthetic generated network.
"""

from __future__ import annotations

import random

import pytest

from repro.runtime import LRUCache, SemanticIndex
from repro.runtime.index import SemanticIndex as _SemanticIndex
from repro.semnet.ic import InformationContent
from repro.semnet.network import UnknownConceptError
from repro.similarity.combined import CombinedSimilarity, SimilarityWeights
from repro.similarity.edge import (
    LeacockChodorowSimilarity,
    PathSimilarity,
    WuPalmerSimilarity,
)
from repro.similarity.gloss import ExtendedLeskSimilarity
from repro.similarity.node import (
    JiangConrathSimilarity,
    LinSimilarity,
    ResnikSimilarity,
)


def _sample_pairs(network, n_pairs=250, seed=0):
    """Deterministic mix of random pairs and same-word sense pairs."""
    rng = random.Random(seed)
    ids = [concept.id for concept in network]
    pairs = [
        (rng.choice(ids), rng.choice(ids)) for _ in range(n_pairs)
    ]
    # Senses of one word are the pairs disambiguation actually compares.
    for word in sorted(network.words())[:40]:
        senses = [s.id for s in network.senses(word)]
        pairs.extend(
            (a, b) for a in senses[:4] for b in senses[:4]
        )
    return pairs


def _assert_identical_measures(network, index, pairs):
    ic = InformationContent(network)
    measures = [
        (WuPalmerSimilarity(network), WuPalmerSimilarity(network, index=index)),
        (PathSimilarity(network), PathSimilarity(network, index=index)),
        (
            LeacockChodorowSimilarity(network),
            LeacockChodorowSimilarity(network, index=index),
        ),
        (LinSimilarity(network, ic=ic), LinSimilarity(network, ic=ic, index=index)),
        (
            ResnikSimilarity(network, ic=ic),
            ResnikSimilarity(network, ic=ic, index=index),
        ),
        (
            JiangConrathSimilarity(network, ic=ic),
            JiangConrathSimilarity(network, ic=ic, index=index),
        ),
        (
            ExtendedLeskSimilarity(network),
            ExtendedLeskSimilarity(network, index=index),
        ),
        (
            CombinedSimilarity(network, ic=ic),
            CombinedSimilarity(network, ic=ic, index=index),
        ),
    ]
    for a, b in pairs:
        for slow, fast in measures:
            assert slow(a, b) == fast(a, b), (
                f"{type(slow).__name__} diverges on ({a}, {b})"
            )


class TestIndexedSimilarityIdentity:
    def test_curated_lexicon(self, lexicon, lexicon_index):
        _assert_identical_measures(
            lexicon, lexicon_index, _sample_pairs(lexicon)
        )

    def test_synthetic_network(self, synthetic_network):
        index = SemanticIndex(synthetic_network)
        _assert_identical_measures(
            synthetic_network, index, _sample_pairs(synthetic_network, seed=1)
        )

    def test_cached_combined_identity(self, lexicon, lexicon_index):
        """LRU-backed CombinedSimilarity equals the plain-dict one."""
        plain = CombinedSimilarity(lexicon)
        cached = CombinedSimilarity(
            lexicon, index=lexicon_index, cache=LRUCache(maxsize=512)
        )
        for a, b in _sample_pairs(lexicon, n_pairs=120, seed=2):
            assert plain(a, b) == cached(a, b)
            assert plain(a, b) == cached(a, b)  # repeat: served from LRU

    def test_weighted_mix_identity(self, lexicon, lexicon_index):
        weights = SimilarityWeights(0.6, 0.1, 0.3)
        plain = CombinedSimilarity(lexicon, weights=weights)
        fast = CombinedSimilarity(
            lexicon, weights=weights, index=lexicon_index
        )
        for a, b in _sample_pairs(lexicon, n_pairs=80, seed=3):
            assert plain(a, b) == fast(a, b)


class TestIndexQueries:
    def test_taxonomy_tables_match_network(self, lexicon, lexicon_index):
        for concept in list(lexicon)[:100]:
            cid = concept.id
            assert lexicon_index.depth(cid) == lexicon.depth(cid)
            assert (
                lexicon_index.hypernym_closure(cid)
                == lexicon.hypernym_closure(cid)
            )
        assert (
            lexicon_index.max_taxonomy_depth == lexicon.max_taxonomy_depth
        )

    def test_lcs_and_distance_match_network(self, lexicon, lexicon_index):
        for a, b in _sample_pairs(lexicon, n_pairs=150, seed=4):
            assert lexicon_index.lowest_common_subsumer(a, b) == \
                lexicon.lowest_common_subsumer(a, b)
            assert lexicon_index.taxonomic_distance(a, b) == \
                lexicon.taxonomic_distance(a, b)

    def test_gloss_bags_match_lazy_tokens(self, lexicon, lexicon_index):
        lesk = ExtendedLeskSimilarity(lexicon)
        for concept in list(lexicon)[:50]:
            assert (
                lexicon_index.gloss_bag(concept.id)
                == lesk._extended_gloss(concept.id)
            )

    def test_unknown_concept_raises(self, lexicon_index):
        with pytest.raises(UnknownConceptError):
            lexicon_index.depth("no.such.concept")
        with pytest.raises(UnknownConceptError):
            lexicon_index.hypernym_closure("no.such.concept")
        with pytest.raises(UnknownConceptError):
            lexicon_index.gloss_bag("no.such.concept")

    def test_gloss_disabled_index(self, synthetic_network):
        index = _SemanticIndex(synthetic_network, include_gloss=False)
        some_id = next(iter(synthetic_network)).id
        with pytest.raises(RuntimeError):
            index.gloss_bag(some_id)
        assert index.stats()["gloss_bags"] == 0

    def test_stats_shape(self, lexicon, lexicon_index):
        stats = lexicon_index.stats()
        assert stats["concepts"] == len(lexicon)
        assert stats["gloss_bags"] == len(lexicon)
        assert stats["ancestor_entries"] > stats["concepts"]
        assert stats["build_seconds"] >= 0
        # Counts are ints; build_seconds is a float and backing a
        # string.  The LCS memo is observable.
        assert stats["backing"] == "heap"
        for key, value in stats.items():
            if key not in ("build_seconds", "backing"):
                assert isinstance(value, int), key
        assert stats["lcs_memo_hits"] + stats["lcs_memo_misses"] >= 0

    def test_lcs_memo_counters_track_lookups(self, lexicon):
        index = SemanticIndex(lexicon, include_gloss=False)
        ids = [concept.id for concept in lexicon]
        a, b = ids[10], ids[20]
        index.lowest_common_subsumer(a, b)
        index.lowest_common_subsumer(a, b)
        stats = index.stats()
        assert stats["lcs_memo_misses"] == 1
        assert stats["lcs_memo_hits"] == 1
