"""The outcome journal (WAL): framing, torn tails, resume semantics.

The journal's contract is narrow and hard: every intact frame replays
the exact ``to_dict`` payload the crashed run recorded, a torn tail is
detected and dropped (never mistaken for a completed document), and a
journal written under a different config/network identity is refused.
These tests pin the frame codec, the salvage behavior byte-by-byte, and
the ``(name, sha256(xml))`` keying that invalidates edited documents.
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.runtime import (
    JournalError,
    JournalWriter,
    document_digest,
    read_journal,
)
from repro.runtime.executor import BatchRecord
from repro.runtime.journal import _FRAME, _MAGIC, _encode_frame
from repro.runtime.resilience import STATUS_RETRIED, DocOutcome


def _record(name: str, result: str = "ok", error: "str | None" = None,
            outcome: "DocOutcome | None" = None) -> BatchRecord:
    return BatchRecord(
        name=name, result=None if error else result, error=error,
        elapsed_s=0.01, outcome=outcome,
    )


class TestFrameCodec:
    def test_frame_is_magic_crc_length_then_canonical_json(self):
        frame = _encode_frame({"b": 1, "a": 2})
        magic, crc, length = _FRAME.unpack_from(frame)
        body = frame[_FRAME.size:]
        assert magic == _MAGIC
        assert length == len(body)
        # Canonical JSON: sorted keys, so identical payloads encode
        # identically regardless of insertion order.
        assert body == json.dumps({"a": 2, "b": 1}, sort_keys=True).encode()

    def test_document_digest_is_sha256_of_utf8(self):
        xml = "<a>é</a>"
        assert document_digest(xml) == hashlib.sha256(
            xml.encode("utf-8")
        ).hexdigest()


class TestWriterRoundTrip:
    def test_round_trip_preserves_records_and_outcomes(self, tmp_path):
        path = tmp_path / "batch.rxjf"
        meta = {"config": "cfg-fp", "network": "net-fp"}
        outcome = DocOutcome(name="b", status=STATUS_RETRIED, attempts=2)
        with JournalWriter(path, meta=meta) as journal:
            journal.append(_record("a"), document_digest("<a/>"))
            journal.append(
                _record("b", outcome=outcome), document_digest("<b/>")
            )
            journal.append(
                _record("c", error="boom"), document_digest("<c/>")
            )
        replay = read_journal(path)
        assert replay.truncated_bytes == 0
        assert replay.matches("cfg-fp", "net-fp")
        assert not replay.matches("other", "net-fp")
        assert [e["record"]["name"] for e in replay.entries] == ["a", "b", "c"]
        assert replay.entries[0]["record"] == _record("a").to_dict()
        assert replay.entries[1]["outcome"] == outcome.to_dict()
        assert "outcome" not in replay.entries[0]
        assert replay.entries[2]["record"]["error"] == "boom"

    def test_completed_keys_by_name_and_digest_later_wins(self, tmp_path):
        path = tmp_path / "batch.rxjf"
        digest = document_digest("<a/>")
        with JournalWriter(path, meta={}) as journal:
            journal.append(_record("a", result="first"), digest)
            journal.append(_record("a", result="second"), digest)
            journal.append(_record("a"), document_digest("<edited/>"))
        done = read_journal(path).completed()
        # Same name under two digests = two distinct entries; the
        # repeated (name, digest) pair keeps only the later record.
        assert len(done) == 2
        assert done[("a", digest)]["record"]["result"] == "second"

    def test_resume_appends_without_a_second_meta_frame(self, tmp_path):
        path = tmp_path / "batch.rxjf"
        with JournalWriter(path, meta={"config": "c", "network": "n"}) as j:
            j.append(_record("a"), document_digest("<a/>"))
        with JournalWriter(path, meta={"config": "c", "network": "n"},
                           resume=True) as j:
            j.append(_record("b"), document_digest("<b/>"))
        replay = read_journal(path)
        assert replay.meta["config"] == "c"
        assert [e["record"]["name"] for e in replay.entries] == ["a", "b"]
        assert not any(e.get("kind") == "meta" for e in replay.entries)

    def test_resume_on_missing_file_writes_the_meta_frame(self, tmp_path):
        path = tmp_path / "fresh.rxjf"
        with JournalWriter(path, meta={"config": "c", "network": "n"},
                           resume=True) as j:
            j.append(_record("a"), document_digest("<a/>"))
        assert read_journal(path).matches("c", "n")

    def test_fsync_batching_counts_pending_frames(self, tmp_path):
        path = tmp_path / "batch.rxjf"
        journal = JournalWriter(path, meta={}, fsync_every=3)
        flushes = []
        original = journal.flush
        journal.flush = lambda: flushes.append(journal._pending) or original()
        for i in range(7):
            journal.append(_record(f"d{i}"), document_digest(str(i)))
        # 3 pending frames trigger each fsync; the tail waits for close.
        assert flushes == [3, 3]
        journal.close()
        assert flushes == [3, 3, 1]
        assert read_journal(path).truncated_bytes == 0

    def test_close_is_idempotent_and_fsync_every_validated(self, tmp_path):
        path = tmp_path / "batch.rxjf"
        journal = JournalWriter(path, meta={})
        journal.close()
        journal.close()
        with pytest.raises(JournalError):
            JournalWriter(path, fsync_every=0)


class TestTornTails:
    def _journal_with(self, tmp_path, n: int = 3) -> str:
        path = tmp_path / "batch.rxjf"
        with JournalWriter(path, meta={"config": "c", "network": "n"}) as j:
            for i in range(n):
                j.append(_record(f"d{i}"), document_digest(str(i)))
        return os.fspath(path)

    def test_mid_frame_truncation_drops_only_the_tail(self, tmp_path):
        path = self._journal_with(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 7)
        replay = read_journal(path)
        assert [e["record"]["name"] for e in replay.entries] == ["d0", "d1"]
        assert replay.truncated_bytes > 0

    def test_corrupt_tail_crc_drops_only_the_tail(self, tmp_path):
        path = self._journal_with(tmp_path)
        with open(path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last[0] ^ 0xFF]))
        replay = read_journal(path)
        assert [e["record"]["name"] for e in replay.entries] == ["d0", "d1"]
        assert replay.truncated_bytes > 0

    def test_garbage_appended_after_valid_frames_is_reported(self, tmp_path):
        path = self._journal_with(tmp_path)
        with open(path, "ab") as fh:
            fh.write(b"\x00garbage-not-a-frame")
        replay = read_journal(path)
        assert len(replay.entries) == 3
        assert replay.truncated_bytes == len(b"\x00garbage-not-a-frame")

    def test_missing_empty_and_headless_journals_raise(self, tmp_path):
        with pytest.raises(JournalError):
            read_journal(tmp_path / "absent.rxjf")
        empty = tmp_path / "empty.rxjf"
        empty.write_bytes(b"")
        with pytest.raises(JournalError):
            read_journal(empty)
        headless = tmp_path / "headless.rxjf"
        headless.write_bytes(_encode_frame({
            "kind": "outcome", "doc_sha": "x",
            "record": {"name": "a", "ok": True},
        }))
        with pytest.raises(JournalError, match="meta"):
            read_journal(headless)

    def test_unsupported_version_is_refused(self, tmp_path):
        path = tmp_path / "future.rxjf"
        path.write_bytes(_encode_frame({"kind": "meta", "version": 99}))
        with pytest.raises(JournalError, match="version"):
            read_journal(path)


class TestCrashWindow:
    def test_each_append_is_one_complete_os_level_write(self, tmp_path):
        # The torn-tail bound ("kill -9 loses at most the final frame")
        # holds only if a frame reaches the OS in one unbuffered write:
        # after every append, with no flush/close, the file must parse
        # cleanly to exactly the appended frames.
        path = tmp_path / "batch.rxjf"
        journal = JournalWriter(path, meta={"config": "c", "network": "n"})
        try:
            for i in range(5):
                journal.append(_record(f"d{i}"), document_digest(str(i)))
                replay = read_journal(path)
                assert len(replay.entries) == i + 1
                assert replay.truncated_bytes == 0
        finally:
            journal.close()
