"""Sphere memoization + exact pruning: signatures, parity, determinism.

Three batteries:

* :class:`TestNetworkFingerprint` / :class:`TestConfigFingerprint` /
  :class:`TestSphereSignature` / :class:`TestSphereMemo` — the memo
  key machinery (frozen digests, ordered-member signatures, LRU
  behavior, mutation invalidation);
* :class:`TestMemoBitIdentity` — memoized replay is bit-identical to
  fresh computation and hands out fresh score dicts;
* :class:`TestThreeWayParity` — the acceptance parity suite: for all
  eight similarity measures (each mounted in its
  :class:`CombinedSimilarity` slot so pruning engages), exhaustive ==
  pruned == pruned+memo on real corpus documents;
* :class:`TestBatchDeterminism` — batch JSONL output is byte-identical
  regardless of document order and worker count.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import XSDFConfig
from repro.core.framework import XSDF
from repro.core.sphere import Sphere, build_sphere
from repro.runtime import (
    BatchExecutor,
    SphereMemo,
    config_fingerprint,
    sphere_signature,
)
from repro.runtime.memo import DEFAULT_MEMO_SIZE
from repro.semnet.generator import GeneratorConfig, generate_network
from repro.semnet.ic import InformationContent
from repro.similarity.combined import CombinedSimilarity, SimilarityWeights
from repro.similarity.edge import (
    LeacockChodorowSimilarity,
    PathSimilarity,
)
from repro.similarity.node import (
    JiangConrathSimilarity,
    ResnikSimilarity,
)

SMALL_XML = (
    "<films><picture><cast><star>Stewart</star><star>Kelly</star></cast>"
    "<plot>spies</plot></picture></films>"
)


def _fresh_network():
    return generate_network(
        GeneratorConfig(n_concepts=60, branching=3, mean_polysemy=2.0, seed=9)
    )


def _sphere_of(lexicon, config=None, label="star"):
    xsdf = XSDF(lexicon, config or XSDFConfig())
    tree = xsdf.build_tree(SMALL_XML)
    node = next(n for n in tree if n.label == label)
    return build_sphere(tree, node, (config or XSDFConfig()).sphere_radius)


class TestNetworkFingerprint:
    def test_stable_and_cached(self, lexicon):
        assert lexicon.fingerprint() == lexicon.fingerprint()

    def test_equal_content_equal_fingerprint(self):
        assert _fresh_network().fingerprint() == _fresh_network().fingerprint()

    def test_frequency_mutation_changes_fingerprint(self):
        network = _fresh_network()
        before = network.fingerprint()
        concept = next(iter(network)).id
        network.set_frequency(concept, 1234.0)
        assert network.fingerprint() != before

    def test_sense_order_mutation_changes_fingerprint(self):
        network = _fresh_network()
        word = next(
            w for w in sorted(network.words()) if network.polysemy(w) > 1
        )
        before = network.fingerprint()
        network.set_sense_order(
            word, [s.id for s in network.senses(word)][::-1]
        )
        assert network.fingerprint() != before


class TestConfigFingerprint:
    def test_equal_configs_share_a_digest(self):
        assert config_fingerprint(XSDFConfig()) == config_fingerprint(
            XSDFConfig()
        )

    def test_scoring_fields_change_the_digest(self):
        base = config_fingerprint(XSDFConfig())
        assert config_fingerprint(XSDFConfig(sphere_radius=3)) != base
        assert config_fingerprint(XSDFConfig(concept_weight=0.7)) != base
        assert (
            config_fingerprint(
                XSDFConfig(similarity_weights=SimilarityWeights(1, 0, 0))
            )
            != base
        )

    def test_prune_and_memo_flags_do_not_change_scores_or_digest(self):
        # prune/memo cannot change any score, so two configs differing
        # only in them may share memo entries.
        assert config_fingerprint(
            XSDFConfig(prune=False, memo=False)
        ) == config_fingerprint(XSDFConfig())


class TestSphereSignature:
    def test_deterministic_for_equal_situations(self, lexicon):
        fp = lexicon.fingerprint()
        cfg = config_fingerprint(XSDFConfig())
        a = sphere_signature(_sphere_of(lexicon), cfg, fp)
        b = sphere_signature(_sphere_of(lexicon), cfg, fp)
        assert a == b

    def test_config_and_network_fingerprints_are_folded_in(self, lexicon):
        sphere = _sphere_of(lexicon)
        fp = lexicon.fingerprint()
        base = sphere_signature(sphere, config_fingerprint(XSDFConfig()), fp)
        other_cfg = sphere_signature(
            sphere, config_fingerprint(XSDFConfig(sphere_radius=3)), fp
        )
        other_net = sphere_signature(
            sphere, config_fingerprint(XSDFConfig()), "0" * 64
        )
        assert base != other_cfg
        assert base != other_net

    def test_member_order_matters(self, lexicon):
        # Float accumulation follows sphere order, so the signature must
        # distinguish two spheres with equal member multisets but
        # different orders (see the repro.runtime.memo module docs).
        sphere = _sphere_of(lexicon)
        assert len(sphere.members) > 1
        reordered = Sphere(
            center=sphere.center,
            radius=sphere.radius,
            members=list(reversed(sphere.members)),
        )
        cfg = config_fingerprint(XSDFConfig())
        fp = lexicon.fingerprint()
        assert sphere_signature(sphere, cfg, fp) != sphere_signature(
            reordered, cfg, fp
        )


class TestSphereMemo:
    def test_roundtrip_and_stats(self, lexicon):
        memo = SphereMemo(XSDFConfig(), lexicon.fingerprint())
        sphere = _sphere_of(lexicon)
        signature = memo.signature(sphere)
        assert memo.get(signature) is None
        entry = (("star.n.01",), ((("star.n.01",), 0.5),), (), ())
        memo.put(signature, entry)
        assert memo.get(signature) == entry
        assert len(memo) == 1
        stats = memo.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["maxsize"] == DEFAULT_MEMO_SIZE

    def test_lru_eviction(self, lexicon):
        memo = SphereMemo(XSDFConfig(), lexicon.fingerprint(), maxsize=1)
        memo.put(b"a", (("x",), (), (), ()))
        memo.put(b"b", (("y",), (), (), ()))
        assert memo.get(b"a") is None
        assert memo.get(b"b") == (("y",), (), (), ())
        assert memo.stats()["evictions"] == 1


class TestMemoBitIdentity:
    def test_replayed_document_is_bit_identical(self, lexicon):
        xsdf = XSDF(lexicon, XSDFConfig())
        assert xsdf.sphere_memo is not None
        first = xsdf.disambiguate_document(SMALL_XML)
        hits_before = xsdf.sphere_memo.stats()["hits"]
        second = xsdf.disambiguate_document(SMALL_XML)
        assert xsdf.sphere_memo.stats()["hits"] > hits_before
        assert len(first.assignments) == len(second.assignments)
        for a, b in zip(first.assignments, second.assignments):
            assert (a.chosen, a.score, a.concept_score, a.context_score) == (
                b.chosen, b.score, b.concept_score, b.context_score
            )
            assert a.scores == b.scores

    def test_replay_hands_out_fresh_dicts(self, lexicon):
        xsdf = XSDF(lexicon, XSDFConfig())
        first = xsdf.disambiguate_document(SMALL_XML)
        first.assignments[0].scores.clear()  # abuse the exposed mapping
        second = xsdf.disambiguate_document(SMALL_XML)
        assert second.assignments[0].scores  # memo entry unharmed

    def test_custom_similarity_disables_auto_memo(self, lexicon):
        xsdf = XSDF(lexicon, XSDFConfig(), similarity=lambda a, b: 0.5)
        assert xsdf.sphere_memo is None

    def test_memo_off_by_config(self, lexicon):
        assert XSDF(lexicon, XSDFConfig(memo=False)).sphere_memo is None


def _measure_suite(network, ic, index=None):
    """All eight measures, each mounted in its CombinedSimilarity slot.

    Mounting keeps exact pruning engaged for every measure: the edge
    slot carries Wu-Palmer / Path / Leacock-Chodorow, the node slot
    Lin / Resnik / Jiang-Conrath, the gloss slot extended Lesk, plus
    the paper's uniform combination.
    """
    edge_only = SimilarityWeights(1, 0, 0)
    node_only = SimilarityWeights(0, 1, 0)
    gloss_only = SimilarityWeights(0, 0, 1)
    uniform = SimilarityWeights()
    kw = {"ic": ic, "index": index}
    return [
        ("wu-palmer", edge_only, CombinedSimilarity(
            network, weights=edge_only, **kw)),
        ("path", edge_only, CombinedSimilarity(
            network, weights=edge_only,
            edge_measure=PathSimilarity(network, index=index), **kw)),
        ("leacock-chodorow", edge_only, CombinedSimilarity(
            network, weights=edge_only,
            edge_measure=LeacockChodorowSimilarity(network, index=index),
            **kw)),
        ("lin", node_only, CombinedSimilarity(
            network, weights=node_only, **kw)),
        ("resnik", node_only, CombinedSimilarity(
            network, weights=node_only,
            node_measure=ResnikSimilarity(network, ic=ic, index=index),
            **kw)),
        ("jiang-conrath", node_only, CombinedSimilarity(
            network, weights=node_only,
            node_measure=JiangConrathSimilarity(network, ic=ic, index=index),
            **kw)),
        ("lesk", gloss_only, CombinedSimilarity(
            network, weights=gloss_only, **kw)),
        ("combined", uniform, CombinedSimilarity(
            network, weights=uniform, **kw)),
    ]


def _assert_assignments_match(exhaustive, other, measure, doc):
    assert len(exhaustive.assignments) == len(other.assignments)
    for a, b in zip(exhaustive.assignments, other.assignments):
        context = f"measure={measure} doc={doc} node={a.node_index}"
        assert a.chosen == b.chosen, context
        assert a.score == b.score, context
        assert a.concept_score == b.concept_score, context
        assert a.context_score == b.context_score, context
        assert a.ambiguity == b.ambiguity, context
        # Pruned tables are subsets with exact values.
        for candidate, score in b.scores.items():
            assert a.scores[candidate] == score, context


class TestThreeWayParity:
    @pytest.fixture(scope="class")
    def parity_docs(self, corpus):
        return sorted(corpus.documents, key=lambda d: len(d.xml))[:3]

    def test_exhaustive_equals_pruned_equals_memoized(
        self, lexicon, parity_docs
    ):
        ic = InformationContent(lexicon)
        for measure, weights, similarity in _measure_suite(lexicon, ic):
            base_cfg = XSDFConfig(
                similarity_weights=weights, prune=False, memo=False
            )
            fast_cfg = XSDFConfig(
                similarity_weights=weights, prune=True, memo=False
            )
            exhaustive = XSDF(lexicon, base_cfg, similarity=similarity)
            pruned = XSDF(lexicon, fast_cfg, similarity=similarity)
            memoized = XSDF(
                lexicon, fast_cfg, similarity=similarity,
                sphere_memo=SphereMemo(fast_cfg, lexicon.fingerprint()),
            )
            for doc in parity_docs:
                expected = exhaustive.disambiguate_document(doc.xml)
                assert expected.assignments, (measure, doc.name)
                _assert_assignments_match(
                    expected, pruned.disambiguate_document(doc.xml),
                    measure, doc.name,
                )
                # Twice through the memoized instance: the second pass
                # replays every sphere from the memo.
                _assert_assignments_match(
                    expected, memoized.disambiguate_document(doc.xml),
                    measure, doc.name,
                )
                _assert_assignments_match(
                    expected, memoized.disambiguate_document(doc.xml),
                    measure, doc.name,
                )
            assert memoized.sphere_memo.stats()["hits"] > 0, measure


class TestBatchDeterminism:
    def test_output_invariant_under_doc_order_and_workers(
        self, lexicon, corpus
    ):
        docs = [
            (d.name, d.xml) for d in corpus.by_dataset("shakespeare")[:6]
        ]
        baseline = {
            r.name: r.to_json_line()
            for r in BatchExecutor(lexicon, XSDFConfig(), workers=1).run(docs)
        }
        assert len(baseline) == len(docs)
        for seed, workers in ((1, 1), (2, 2), (3, 3)):
            shuffled = list(docs)
            random.Random(seed).shuffle(shuffled)
            records = BatchExecutor(
                lexicon, XSDFConfig(), workers=workers
            ).run(shuffled)
            assert {r.name: r.to_json_line() for r in records} == baseline
