"""Metrics registry tests + instrumentation hooks in XSDF."""

from __future__ import annotations

import json

from repro import XSDF, XSDFConfig
from repro.runtime import LRUCache, MetricsRegistry


class TestRegistry:
    def test_counters(self):
        m = MetricsRegistry()
        m.count("documents")
        m.count("documents", 2)
        assert m.counter("documents") == 3
        assert m.counter("untouched") == 0

    def test_timer_accumulates(self):
        m = MetricsRegistry()
        for _ in range(3):
            with m.timer("stage"):
                pass
        stage = m.stage("stage")
        assert stage.count == 3
        assert stage.total >= 0
        assert stage.mean == stage.total / 3

    def test_observe_external_duration(self):
        m = MetricsRegistry()
        m.observe("batch", 1.5)
        m.observe("batch", 0.5)
        assert m.stage("batch").count == 2
        assert m.stage("batch").total == 2.0

    def test_report_shape(self):
        m = MetricsRegistry()
        m.count("documents", 4)
        with m.timer("parse"):
            pass
        cache = LRUCache(maxsize=4)
        cache["k"] = 1
        cache.get("k")
        m.register_cache("pairs", cache)
        report = m.report()
        assert report["counters"]["documents"] == 4
        assert report["stages"]["parse"]["count"] == 1
        assert report["caches"]["pairs"]["hits"] == 1
        assert report["throughput"]["documents"] == 4
        assert report["throughput"]["docs_per_s"] > 0

    def test_json_round_trip(self, tmp_path):
        m = MetricsRegistry()
        m.count("documents")
        parsed = json.loads(m.to_json())
        assert parsed["counters"]["documents"] == 1
        path = tmp_path / "metrics.json"
        m.write_json(str(path))
        assert json.loads(path.read_text())["counters"]["documents"] == 1


class TestXSDFInstrumentation:
    def test_default_is_uninstrumented(self, lexicon, figure1_xml):
        xsdf = XSDF(lexicon, XSDFConfig())
        assert xsdf.metrics is None
        xsdf.disambiguate_document(figure1_xml)  # no metrics side effects

    def test_stage_timers_and_counters(self, lexicon, figure1_xml):
        metrics = MetricsRegistry()
        xsdf = XSDF(lexicon, XSDFConfig(), metrics=metrics)
        result = xsdf.disambiguate_document(figure1_xml)
        assert metrics.counter("documents") == 1
        assert metrics.counter("targets") == result.n_targets
        assert metrics.counter("nodes") == result.n_nodes
        assert metrics.counter("assignments") == len(result.assignments)
        for stage in ("parse", "select", "sphere", "score", "document"):
            assert metrics.stage(stage) is not None, stage
        # Sphere/score timers fire once per target that had candidates.
        assert metrics.stage("sphere").count == len(result.assignments)

    def test_instrumented_results_identical(self, lexicon, figure1_xml):
        plain = XSDF(lexicon, XSDFConfig()).disambiguate_document(figure1_xml)
        timed = XSDF(
            lexicon, XSDFConfig(), metrics=MetricsRegistry()
        ).disambiguate_document(figure1_xml)
        assert plain.to_dict() == timed.to_dict()


class TestEvents:
    def test_event_records_structured_fields(self):
        m = MetricsRegistry()
        m.event("fault", doc="a", stage="inject")
        m.event("doc_failed", doc="b")
        assert m.events() == [
            {"event": "fault", "doc": "a", "stage": "inject"},
            {"event": "doc_failed", "doc": "b"},
        ]
        assert m.events("fault") == [
            {"event": "fault", "doc": "a", "stage": "inject"}
        ]
        assert m.events("nothing") == []

    def test_event_buffer_is_bounded(self):
        m = MetricsRegistry()
        for i in range(MetricsRegistry.MAX_EVENTS + 5):
            m.event("tick", i=i)
        report = m.report()
        assert len(report["events"]) == MetricsRegistry.MAX_EVENTS
        assert report["events_dropped"] == 5

    def test_report_includes_events(self):
        m = MetricsRegistry()
        m.event("breaker_tripped", remaining=3)
        report = m.report()
        assert report["events"] == [
            {"event": "breaker_tripped", "remaining": 3}
        ]
        assert report["events_dropped"] == 0
        # And the JSON rendering carries them too.
        assert json.loads(m.to_json())["events"][0]["event"] == \
            "breaker_tripped"
