"""PackedIndex correctness: packed kernels, codec, worker shipping.

Three contracts are pinned here:

* **query parity** — every query the packed index serves (closures,
  depths, LCS, taxonomic distance, gloss bags, IC, the Lesk kernel)
  must ``==`` the :class:`SemanticIndex` / network-walk value, on the
  curated lexicon and on random synthetic networks;
* **codec round-trip** — ``to_bytes`` → ``from_bytes`` reproduces every
  table exactly, and truncated/corrupted/foreign buffers raise
  :class:`PackedIndexError` instead of mis-decoding;
* **worker shipping** — pickling goes through the compact codec
  (``__getstate__``/``__setstate__``) and the payload is a fraction of
  the pickled network, which is what makes parent-built index sharing
  cheaper than per-worker rebuilds.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.runtime import (
    PackedIndex,
    PackedIndexCRCError,
    PackedIndexError,
    PackedIndexTruncatedError,
    SemanticIndex,
)
from repro.semnet.generator import GeneratorConfig, generate_network
from repro.semnet.network import UnknownConceptError
from repro.similarity.gloss import ExtendedLeskSimilarity


def _sample_pairs(network, n_pairs=150, seed=0):
    """Deterministic mix of random pairs and same-word sense pairs."""
    rng = random.Random(seed)
    ids = [concept.id for concept in network]
    pairs = [(rng.choice(ids), rng.choice(ids)) for _ in range(n_pairs)]
    for word in sorted(network.words())[:20]:
        senses = [s.id for s in network.senses(word)]
        pairs.extend((a, b) for a in senses[:3] for b in senses[:3])
    return pairs


def _assert_query_parity(network, index, packed, pairs):
    """Every packed query must equal the dict-index answer exactly."""
    for a, b in pairs:
        assert packed.hypernym_closure(a) == index.hypernym_closure(a)
        assert packed.depth(a) == index.depth(a)
        assert packed.lowest_common_subsumer(a, b) == \
            index.lowest_common_subsumer(a, b), (a, b)
        assert packed.taxonomic_distance(a, b) == \
            index.taxonomic_distance(a, b), (a, b)
        assert packed.gloss_bag(a) == index.gloss_bag(a)
        assert packed.ic.ic(a) == index.ic.ic(a)
    assert packed.ic.max_ic == index.ic.max_ic
    assert packed.max_taxonomy_depth == index.max_taxonomy_depth


@pytest.fixture(scope="module")
def packed_lexicon(lexicon):
    """A PackedIndex over the curated lexicon (shared, read-only)."""
    return PackedIndex(lexicon)


class TestQueryParity:
    def test_curated_lexicon_queries_match_dict_index(
        self, lexicon, lexicon_index, packed_lexicon
    ):
        _assert_query_parity(
            lexicon, lexicon_index, packed_lexicon, _sample_pairs(lexicon)
        )

    @pytest.mark.parametrize("seed", [3, 11])
    def test_synthetic_network_queries_match_dict_index(self, seed):
        network = generate_network(
            GeneratorConfig(n_concepts=120, mean_polysemy=2.0, seed=seed)
        )
        index = SemanticIndex(network)
        packed = PackedIndex(network)
        _assert_query_parity(
            network, index, packed, _sample_pairs(network, seed=seed)
        )

    def test_lesk_kernel_matches_unpacked_measure(
        self, lexicon, packed_lexicon
    ):
        """The interned sparse DP == the string DP, score for score."""
        unpacked = ExtendedLeskSimilarity(lexicon)
        for a, b in _sample_pairs(lexicon, n_pairs=60, seed=4):
            assert packed_lexicon.lesk_similarity(a, b) == unpacked(a, b), \
                (a, b)

    def test_from_semantic_index_equals_direct_build(self, lexicon):
        index = SemanticIndex(lexicon)
        via_index = PackedIndex.from_semantic_index(index)
        direct = PackedIndex(lexicon)
        assert via_index.to_bytes() == direct.to_bytes()

    def test_unknown_concept_raises(self, packed_lexicon):
        with pytest.raises(UnknownConceptError):
            packed_lexicon.depth("no.such.concept")
        with pytest.raises(UnknownConceptError):
            packed_lexicon.pair_terms("no.such.concept", "also.missing")

    def test_gloss_and_ic_gating(self, lexicon):
        taxonomy_only = PackedIndex(
            lexicon, include_gloss=False, include_ic=False
        )
        assert not taxonomy_only.has_gloss
        assert not taxonomy_only.has_ic
        some_id = next(iter(lexicon)).id
        with pytest.raises(RuntimeError):
            taxonomy_only.gloss_bag(some_id)
        with pytest.raises(RuntimeError):
            taxonomy_only.ic_value(some_id)
        with pytest.raises(RuntimeError):
            _ = taxonomy_only.ic


class TestCodec:
    def test_round_trip_on_curated_lexicon(self, lexicon, packed_lexicon):
        clone = PackedIndex.from_bytes(packed_lexicon.to_bytes())
        _assert_query_parity(
            lexicon, packed_lexicon, clone, _sample_pairs(lexicon, seed=1)
        )
        # The decoded tables re-encode to the identical buffer.
        assert clone.to_bytes() == packed_lexicon.to_bytes()

    @pytest.mark.parametrize("seed", [0, 7, 19])
    def test_round_trip_on_random_synthetic_networks(self, seed):
        network = generate_network(
            GeneratorConfig(
                n_concepts=60 + 30 * seed, mean_polysemy=1.8, seed=seed
            )
        )
        packed = PackedIndex(network)
        clone = PackedIndex.from_bytes(packed.to_bytes())
        assert clone.to_bytes() == packed.to_bytes()
        for a, b in _sample_pairs(network, n_pairs=40, seed=seed):
            assert clone.pair_terms(a, b) == packed.pair_terms(a, b)
            assert clone.lesk_similarity(a, b) == packed.lesk_similarity(a, b)

    def test_truncated_buffers_raise(self, packed_lexicon):
        blob = packed_lexicon.to_bytes()
        for cut in (0, 4, 10, len(blob) // 2, len(blob) - 1):
            with pytest.raises(PackedIndexError):
                PackedIndex.from_bytes(blob[:cut])

    def test_truncation_raises_the_typed_subclass(self, packed_lexicon):
        """Truncation is distinguishable from corruption (typed errors)."""
        blob = packed_lexicon.to_bytes()
        for cut in (0, 10, len(blob) - 1):
            with pytest.raises(PackedIndexTruncatedError):
                PackedIndex.from_bytes(blob[:cut])
        # The subclass is still the umbrella PackedIndexError, so
        # existing except clauses keep working.
        assert issubclass(PackedIndexTruncatedError, PackedIndexError)

    def test_corrupted_body_raises(self, packed_lexicon):
        blob = bytearray(packed_lexicon.to_bytes())
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(PackedIndexError):
            PackedIndex.from_bytes(bytes(blob))

    def test_corruption_raises_the_crc_subclass(self, packed_lexicon):
        blob = bytearray(packed_lexicon.to_bytes())
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(PackedIndexCRCError):
            PackedIndex.from_bytes(bytes(blob))
        assert issubclass(PackedIndexCRCError, PackedIndexError)

    def test_foreign_magic_and_version_raise(self, packed_lexicon):
        blob = packed_lexicon.to_bytes()
        with pytest.raises(PackedIndexError):
            PackedIndex.from_bytes(b"XXXX" + blob[4:])
        with pytest.raises(PackedIndexError):
            # Bump the version halfword past anything supported.
            PackedIndex.from_bytes(blob[:4] + b"\xff\xff" + blob[6:])


class TestWorkerShipping:
    def test_pickle_round_trip_preserves_queries(
        self, lexicon, packed_lexicon
    ):
        clone = pickle.loads(pickle.dumps(packed_lexicon))
        for a, b in _sample_pairs(lexicon, n_pairs=40, seed=2):
            assert clone.pair_terms(a, b) == packed_lexicon.pair_terms(a, b)
            assert clone.gloss_bag(a) == packed_lexicon.gloss_bag(a)

    def test_pickled_packed_index_is_smaller_than_network(
        self, lexicon, lexicon_index, packed_lexicon
    ):
        """The worker-shipping win: packed bytes ≪ pickled inputs."""
        packed_size = len(pickle.dumps(packed_lexicon))
        network_size = len(pickle.dumps(lexicon))
        index_size = len(pickle.dumps(lexicon_index))
        assert packed_size < network_size / 2
        assert packed_size < index_size / 2

    def test_stats_shape(self, packed_lexicon, lexicon):
        stats = packed_lexicon.stats()
        assert stats["concepts"] == len(lexicon)
        assert stats["ancestor_entries"] >= stats["concepts"]
        assert stats["distinct_tokens"] <= stats["gloss_tokens"]
        assert stats["packed_bytes"] > 0
        assert stats["build_seconds"] >= 0
        a, b = [concept.id for concept in lexicon][5:7]
        before = packed_lexicon.stats()["pair_memo_misses"]
        packed_lexicon.pair_terms(a, b)
        packed_lexicon.pair_terms(b, a)  # symmetric memo: second is a hit
        after = packed_lexicon.stats()
        assert after["pair_memo_misses"] >= before
        assert after["pair_memo_hits"] >= 1
