"""Persistent pool runtime: lifecycle, shm hygiene, crash recovery.

The contracts pinned here are the PR-8 tentpole's:

* a second batch on the same executor **reuses** the warm pool (no
  respawn, no republish);
* a worker hard-killed mid-document (``os._exit``, the crash no
  ``except`` can catch) triggers respawn-and-requeue and the batch
  still completes with byte-identical survivors;
* ``close()`` unlinks the published shared-memory segment — no leaked
  ``/dev/shm`` entries;
* serial and persistent-pool output are byte-identical even across
  ``PYTHONHASHSEED`` variation (subprocess-checked, since the hash
  seed is frozen at interpreter start).
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro import XSDFConfig
from repro.runtime import (
    BatchExecutor,
    FaultInjector,
    FaultSpec,
    MetricsRegistry,
    PackedIndex,
    SharedIndexSegment,
    auto_workers,
    parse_workers,
)


class TestWorkerCountHelpers:
    def test_auto_workers_is_a_positive_int(self):
        count = auto_workers()
        assert isinstance(count, int)
        assert count >= 1

    def test_auto_workers_respects_affinity_mask(self, monkeypatch):
        monkeypatch.delattr(os, "process_cpu_count", raising=False)
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 3}, raising=False
        )
        assert auto_workers() == 2

    def test_parse_workers_accepts_auto_and_integers(self):
        assert parse_workers("auto") == auto_workers()
        assert parse_workers(" AUTO ") == auto_workers()
        assert parse_workers("3") == 3
        assert parse_workers(4) == 4
        # Range validation stays with the consumer: 0 parses fine and
        # must be rejected by BatchExecutor with its historical error.
        assert parse_workers("0") == 0

    def test_parse_workers_rejects_garbage(self):
        with pytest.raises(ValueError, match="integer or 'auto'"):
            parse_workers("banana")

    def test_executor_still_rejects_nonpositive_workers(self, lexicon):
        with pytest.raises(ValueError, match="workers"):
            BatchExecutor(lexicon, workers=parse_workers("0"))


class TestSharedIndexSegment:
    def test_publish_attach_release_roundtrip(self, lexicon):
        payload = PackedIndex(lexicon).to_shared_payload()
        segment = SharedIndexSegment.publish(payload)
        assert segment is not None
        assert segment.size == len(payload)
        attached = PackedIndex.from_shared(segment.name)
        assert attached.is_shared
        attached.release_shared()
        assert not attached.is_shared
        segment.release()
        assert segment.released

    def test_last_release_unlinks_the_segment(self, lexicon):
        from multiprocessing import shared_memory

        payload = PackedIndex(lexicon).to_shared_payload()
        segment = SharedIndexSegment.publish(payload)
        assert segment is not None
        name = segment.name
        segment.acquire()  # a second co-owner
        segment.release()  # publisher leaves; co-owner keeps it alive
        assert not segment.released
        PackedIndex.from_shared(name).release_shared()  # still attachable
        segment.release()  # last co-owner leaves -> unlink
        assert segment.released
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_release_is_idempotent_and_acquire_after_release_fails(
        self, lexicon
    ):
        segment = SharedIndexSegment.publish(b"payload")
        assert segment is not None
        segment.release()
        segment.release()  # no double-unlink
        with pytest.raises(ValueError):
            segment.acquire()


class TestWarmPoolReuse:
    def test_second_batch_reuses_the_pool(self, lexicon, figure1_xml):
        metrics = MetricsRegistry()
        docs = [(f"doc-{i}", figure1_xml) for i in range(4)]
        with BatchExecutor(
            lexicon, XSDFConfig(), workers=2, metrics=metrics,
            oversubscribe=True,  # exercise the real pool on 1-CPU hosts
        ) as executor:
            first = [r.to_json_line() for r in executor.run(docs)]
            stats = executor.runtime_stats()
            assert stats["alive"] == 1
            assert stats["generation"] == 1
            assert stats["pool_reuse_count"] == 0
            assert stats["shm_bytes"] > 0
            second = [r.to_json_line() for r in executor.run(docs)]
            stats = executor.runtime_stats()
            # Same generation: the warm pool served the second batch;
            # nothing was respawned or republished.
            assert stats["generation"] == 1
            assert stats["pool_reuse_count"] == 1
            assert stats["worker_respawns"] == 0
            assert first == second
        assert metrics.counter("pool_spawns") == 1
        assert metrics.counter("pool_reuses") == 1

    def test_close_is_idempotent_and_executor_stays_usable(
        self, lexicon, figure1_xml
    ):
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=2, oversubscribe=True
        )
        docs = [(f"doc-{i}", figure1_xml) for i in range(3)]
        baseline = [r.to_json_line() for r in executor.run(docs)]
        executor.close()
        executor.close()
        # The serial path (and a fresh parallel runtime) still works.
        again = [r.to_json_line() for r in executor.run(docs)]
        assert again == baseline
        executor.close()


class TestShmHygiene:
    def test_close_unlinks_the_published_segment(self, lexicon, figure1_xml):
        from multiprocessing import shared_memory

        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=2, oversubscribe=True
        )
        executor.run([(f"doc-{i}", figure1_xml) for i in range(3)])
        segment = executor._segment
        assert segment is not None and not segment.released
        name = segment.name
        shared_memory.SharedMemory(name=name).close()  # exists while open
        executor.close()
        assert segment.released
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestWorkerCrashRecovery:
    def test_worker_exit_respawns_and_requeues(self, lexicon, figure1_xml):
        """A hard worker crash must not lose or re-blame documents."""
        injector = FaultInjector(
            seed=42, specs=[FaultSpec.exiting(match="victim", max_attempt=1)]
        )
        metrics = MetricsRegistry()
        with BatchExecutor(
            lexicon,
            XSDFConfig(),
            workers=2,
            metrics=metrics,
            injector=injector,
            doc_timeout=1.0,
            backoff_base=0.0,
            oversubscribe=True,
        ) as executor:
            docs = [(f"doc-{i}", figure1_xml) for i in range(3)]
            docs.insert(1, ("victim", figure1_xml))
            records = executor.run(docs)
            assert [r.name for r in records] == [name for name, _ in docs]
            assert all(r.ok for r in records), [r.error for r in records]
            by_name = {r.name: r for r in records}
            victim = by_name["victim"].outcome
            assert victim is not None
            assert victim.status == "retried"
            assert victim.attempts >= 2
            # Bystanders are blameless: they succeeded on attempt 1.
            for name, _ in docs:
                if name == "victim":
                    continue
                outcome = by_name[name].outcome
                assert outcome is not None and outcome.attempts == 1
            stats = executor.runtime_stats()
            assert stats["worker_respawns"] >= 1
            assert stats["generation"] >= 2
            # Survivors are byte-identical to an untouched serial run.
            serial = BatchExecutor(lexicon, XSDFConfig(), workers=1)
            assert [r.to_json_line() for r in records] == [
                r.to_json_line() for r in serial.run(docs)
            ]
        assert metrics.counter("worker_respawns") >= 1

    def test_exit_fault_demotes_to_raise_in_parent(self, lexicon, figure1_xml):
        """Serial runs survive an ``exit`` schedule (no process suicide)."""
        injector = FaultInjector(
            seed=7, specs=[FaultSpec.exiting(match="victim", max_attempt=1)]
        )
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=1, injector=injector,
            backoff_base=0.0,
        )
        records = executor.run([("victim", figure1_xml)])
        assert records[0].ok
        assert records[0].outcome is not None
        assert records[0].outcome.status == "retried"


_HASHSEED_SCRIPT = """
import sys
from repro import XSDFConfig
from repro.runtime import BatchExecutor
from repro.semnet import default_lexicon
from tests.conftest import FIGURE1_XML

workers = int(sys.argv[1])
with BatchExecutor(
    default_lexicon(), XSDFConfig(), workers=workers, oversubscribe=True
) as executor:
    docs = [(f"doc-{i}", FIGURE1_XML) for i in range(3)]
    for record in executor.run(docs):
        sys.stdout.write(record.to_json_line() + "\\n")
"""


@pytest.mark.slow
class TestHashSeedIndependence:
    def test_serial_equals_pool_across_hash_seeds(self):
        """{workers 1, 2} x {PYTHONHASHSEED 0, 345} -> one output.

        Hash randomization is frozen at interpreter start, so the only
        honest way to vary it is fresh subprocesses.
        """
        outputs = set()
        for workers in (1, 2):
            for seed in ("0", "345"):
                env = dict(os.environ)
                env["PYTHONHASHSEED"] = seed
                env["PYTHONPATH"] = os.pathsep.join(
                    p for p in ("src", env.get("PYTHONPATH", "")) if p
                )
                proc = subprocess.run(
                    [sys.executable, "-c", _HASHSEED_SCRIPT, str(workers)],
                    capture_output=True,
                    text=True,
                    env=env,
                    timeout=300,
                    cwd=os.path.dirname(
                        os.path.dirname(os.path.dirname(__file__))
                    ),
                )
                assert proc.returncode == 0, proc.stderr
                outputs.add(proc.stdout)
        assert len(outputs) == 1
