"""Fault-isolated batch pipeline: retries, breaker, timeouts, ladder.

The contract under test, end to end: a batch survives injected chaos
with structured per-document outcomes, and **every document that
succeeds under faults is byte-identical to a fault-free run** (the
chaos parity gate mirrored by the CI chaos job).  The degradation
ladder is tested at the XSDF level with the faults module's test
doubles: each rung swap changes counters, never scores.
"""

from __future__ import annotations

import pytest

from repro import XSDF, XSDFConfig
from repro.runtime import (
    BatchAbortError,
    BatchExecutor,
    CircuitBreaker,
    DocOutcome,
    FaultInjector,
    FaultSpec,
    MetricsRegistry,
    PackedIndex,
    RetryPolicy,
)
from repro.runtime import executor as executor_module
from repro.runtime.faults import BrokenMemo, FaultyKernel
from repro.runtime.resilience import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RETRIED,
)


def _docs(corpus, n):
    docs = []
    for dataset in corpus.datasets():
        docs.append(corpus.by_dataset(dataset)[0])
        if len(docs) == n:
            break
    return [(d.name, d.xml) for d in docs]


def _lines(records):
    return {r.name: r.to_json_line() for r in records}


class TestRetryPolicy:
    def test_allows_counts_redispatches(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.allows(1) and policy.allows(2)
        assert not policy.allows(3)
        assert not RetryPolicy(max_retries=0).allows(1)

    def test_delay_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_cap=2.0)
        assert policy.delay(1) == 0.5
        assert policy.delay(2) == 1.0
        assert policy.delay(3) == 2.0
        assert policy.delay(9) == 2.0  # capped

    def test_zero_base_means_instant_retry(self):
        assert RetryPolicy(backoff_base=0.0).delay(5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-0.1)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert not breaker.tripped
        assert breaker.record_failure()  # the tripping failure
        assert breaker.tripped
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.tripped

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestDocOutcome:
    def test_ok_property(self):
        assert DocOutcome(name="d").ok
        assert DocOutcome(name="d", status=STATUS_RETRIED).ok
        assert not DocOutcome(name="d", status=STATUS_FAILED).ok

    def test_to_dict_omits_empty_fields(self):
        assert DocOutcome(name="d").to_dict() == {
            "name": "d", "status": STATUS_OK, "attempts": 1,
        }
        full = DocOutcome(
            name="d", status=STATUS_FAILED, attempts=3, stage="parse",
            error_type="XMLError", error="XMLError: boom",
            degradations=("index_downgrades",),
        ).to_dict()
        assert full["stage"] == "parse"
        assert full["degradations"] == ["index_downgrades"]


class TestSerialRetries:
    def test_flaky_document_is_retried_bit_identically(
        self, lexicon, figure1_xml
    ):
        metrics = MetricsRegistry()
        baseline = BatchExecutor(lexicon, XSDFConfig(), workers=1)
        base_records = baseline.run([("doc", figure1_xml)])
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=1, backoff_base=0.0,
            metrics=metrics,
            injector=FaultInjector(0, [FaultSpec.flaky(fail_attempts=1)]),
        )
        records = executor.run([("doc", figure1_xml)])
        assert records[0].ok
        outcome = records[0].outcome
        assert outcome.status == STATUS_RETRIED
        assert outcome.attempts == 2
        # The retried record's JSONL is byte-identical to fault-free.
        assert records[0].to_json_line() == base_records[0].to_json_line()
        report = metrics.report()
        assert report["counters"]["retries"] == 1
        assert report["counters"]["outcome_retried"] == 1
        (fault_event,) = metrics.events("fault")
        assert fault_event["doc"] == "doc"

    def test_permanent_fault_is_not_retried(self, lexicon, figure1_xml):
        metrics = MetricsRegistry()
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=1, backoff_base=0.0,
            metrics=metrics,
            injector=FaultInjector(
                0, [FaultSpec.raising(transient=False)]
            ),
        )
        records = executor.run([("doc", figure1_xml)])
        outcome = records[0].outcome
        assert not records[0].ok
        assert outcome.status == STATUS_FAILED
        assert outcome.attempts == 1  # permanent -> no redispatch
        assert outcome.stage == "inject"
        assert metrics.report()["counters"].get("retries", 0) == 0
        (failed_event,) = metrics.events("doc_failed")
        assert failed_event["stage"] == "inject"

    def test_exhausted_retries_fail_with_attempt_count(
        self, lexicon, figure1_xml
    ):
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=1, backoff_base=0.0,
            max_retries=2,
            injector=FaultInjector(0, [FaultSpec.raising()]),
        )
        records = executor.run([("doc", figure1_xml)])
        outcome = records[0].outcome
        assert outcome.status == STATUS_FAILED
        assert outcome.attempts == 3  # max_retries + 1 runs

    def test_backoff_sleeps_between_attempts(
        self, lexicon, figure1_xml, monkeypatch
    ):
        naps = []
        monkeypatch.setattr(executor_module.time, "sleep", naps.append)
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=1, backoff_base=0.1,
            max_retries=2,
            injector=FaultInjector(0, [FaultSpec.raising()]),
        )
        executor.run([("doc", figure1_xml)])
        assert naps == [0.1, 0.2]  # doubling schedule

    def test_on_error_fail_aborts_with_partial_records(
        self, lexicon, figure1_xml
    ):
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=1, backoff_base=0.0,
            on_error="fail",
            injector=FaultInjector(
                0, [FaultSpec.raising(match="bad", transient=False)]
            ),
        )
        docs = [("good", figure1_xml), ("bad", figure1_xml),
                ("never-ran", figure1_xml)]
        with pytest.raises(BatchAbortError) as excinfo:
            executor.run(docs)
        names = [r.name for r in excinfo.value.records]
        assert names == ["good", "bad"]  # partials survive the abort

    def test_bad_on_error_rejected(self, lexicon):
        with pytest.raises(ValueError):
            BatchExecutor(lexicon, on_error="explode")
        with pytest.raises(ValueError):
            BatchExecutor(lexicon, doc_timeout=0.0)


class TestChaosParity:
    """The gate the CI chaos job replays: survivors are bit-identical."""

    def test_mixed_schedule_with_workers(self, lexicon, corpus):
        docs = _docs(corpus, 6)
        names = [name for name, _ in docs]
        baseline = _lines(
            BatchExecutor(lexicon, XSDFConfig(), workers=1).run(docs)
        )
        metrics = MetricsRegistry()
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=2, backoff_base=0.0,
            metrics=metrics, oversubscribe=True,
            injector=FaultInjector(42, [
                FaultSpec.flaky(match=names[1], fail_attempts=1),
                FaultSpec.raising(match=names[3], transient=False),
            ]),
        )
        records = executor.run(docs)
        assert [r.name for r in records] == names  # input order kept
        by_name = {r.name: r for r in records}
        assert not by_name[names[3]].ok  # the permanent casualty
        assert by_name[names[3]].outcome.stage == "inject"
        assert by_name[names[1]].outcome.status == STATUS_RETRIED
        for name, record in by_name.items():
            if record.ok:
                assert record.to_json_line() == baseline[name], name
        assert metrics.report()["counters"]["outcome_failed"] == 1

    def test_corrupt_packed_payload_degrades_workers_with_parity(
        self, lexicon, corpus
    ):
        docs = _docs(corpus, 4)
        baseline = _lines(
            BatchExecutor(lexicon, XSDFConfig(), workers=1).run(docs)
        )
        metrics = MetricsRegistry()
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=2, metrics=metrics,
            oversubscribe=True,  # exercise the real pool on 1-CPU hosts
            injector=FaultInjector(7, [FaultSpec.corrupt_packed()]),
        )
        records = executor.run(docs)
        assert all(r.ok for r in records)
        assert _lines(records) == baseline
        # Every worker decoded a corrupted payload and degraded one rung.
        counters = metrics.report()["counters"]
        assert counters.get("degrade_packed_decode", 0) >= 1


class TestCircuitBreakerPath:
    def test_persistent_submit_failures_trip_to_serial(
        self, lexicon, figure1_xml, monkeypatch
    ):
        """apply_async blowing up every wave must end in a serial drain."""

        class _BrokenSubmitPool:
            def __init__(self, *args, **kwargs):
                init = kwargs.get("initializer")
                if init is not None:
                    init(*kwargs.get("initargs", ()))

            def apply_async(self, fn, args):
                raise RuntimeError("pool lost its workers")

            def close(self):
                pass

            def join(self):
                pass

        import multiprocessing

        monkeypatch.setattr(multiprocessing, "Pool", _BrokenSubmitPool)
        metrics = MetricsRegistry()
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=2, metrics=metrics,
            breaker_threshold=3, oversubscribe=True,
        )
        docs = [("a", figure1_xml), ("b", figure1_xml)]
        records = executor.run(docs)
        assert all(r.ok for r in records)
        report = metrics.report()
        assert report["counters"]["breaker_trips"] == 1
        assert len(metrics.events("pool_fault")) == 3  # one per strike
        assert metrics.events("breaker_tripped")
        # Serial-drain output is byte-identical to a plain serial run.
        serial = BatchExecutor(lexicon, XSDFConfig(), workers=1)
        assert [r.to_json_line() for r in records] == \
            [r.to_json_line() for r in serial.run(docs)]


class TestDocTimeout:
    def test_straggler_is_killed_and_redispatched(self, lexicon, corpus):
        docs = _docs(corpus, 3)
        slow_name = docs[0][0]
        baseline = _lines(
            BatchExecutor(lexicon, XSDFConfig(), workers=1).run(docs)
        )
        metrics = MetricsRegistry()
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=2, backoff_base=0.0,
            doc_timeout=0.75, metrics=metrics, oversubscribe=True,
            injector=FaultInjector(0, [
                # Slow-then-recover: only the first dispatch stalls.
                FaultSpec.slow(match=slow_name, delay_s=30.0, max_attempt=1),
            ]),
        )
        records = executor.run(docs)
        assert all(r.ok for r in records)
        assert _lines(records) == baseline  # parity after the re-dispatch
        by_name = {r.name: r for r in records}
        assert by_name[slow_name].outcome.status == STATUS_RETRIED
        assert by_name[slow_name].outcome.attempts >= 2
        report = metrics.report()
        assert report["counters"]["doc_timeouts"] >= 1
        assert metrics.events("doc_timeout")

    def test_timeout_without_retries_fails_with_stage(self, lexicon, corpus):
        docs = _docs(corpus, 2)
        slow_name = docs[1][0]
        executor = BatchExecutor(
            lexicon, XSDFConfig(), workers=2, backoff_base=0.0,
            doc_timeout=0.75, max_retries=0, oversubscribe=True,
            injector=FaultInjector(0, [
                FaultSpec.slow(match=slow_name, delay_s=30.0),
            ]),
        )
        records = executor.run(docs)
        by_name = {r.name: r for r in records}
        outcome = by_name[slow_name].outcome
        assert outcome.status == STATUS_FAILED
        assert outcome.stage == "timeout"
        assert by_name[docs[0][0]].ok  # the fast doc is unaffected


class TestDegradationLadder:
    """Each rung swap is bit-identical; only counters and rung change."""

    def test_packed_kernel_fault_downgrades_to_dict_rung(
        self, lexicon, figure1_xml
    ):
        baseline = XSDF(lexicon, XSDFConfig()).disambiguate_document(
            figure1_xml
        )
        metrics = MetricsRegistry()
        faulty = FaultyKernel(PackedIndex(lexicon), fail_calls=1)
        xsdf = XSDF(lexicon, XSDFConfig(), index=faulty, metrics=metrics)
        assert xsdf.index_rung == "packed"
        result = xsdf.disambiguate_document(figure1_xml)
        assert xsdf.index_rung == "dict"
        assert xsdf.degrade_stats["index_downgrades"] == 1
        assert result.to_dict() == baseline.to_dict()
        (event,) = metrics.events("degrade")
        assert event["kind"] == "index_downgrade"
        assert event["rung"] == "dict"

    def test_ladder_walks_all_the_way_to_the_network(
        self, lexicon, figure1_xml
    ):
        baseline = XSDF(lexicon, XSDFConfig()).disambiguate_document(
            figure1_xml
        )
        xsdf = XSDF(lexicon, XSDFConfig(), index=PackedIndex(lexicon))
        assert xsdf._downgrade_index()
        assert xsdf.index_rung == "dict"
        assert xsdf._downgrade_index()
        assert xsdf.index_rung == "network"
        assert not xsdf._downgrade_index()  # bottom of the ladder
        result = xsdf.disambiguate_document(figure1_xml)
        assert result.to_dict() == baseline.to_dict()

    def test_memo_fault_disables_memo_with_parity(
        self, lexicon, figure1_xml
    ):
        baseline = XSDF(lexicon, XSDFConfig()).disambiguate_document(
            figure1_xml
        )
        xsdf = XSDF(lexicon, XSDFConfig())
        assert xsdf.sphere_memo is not None
        xsdf.sphere_memo = BrokenMemo(xsdf.sphere_memo, fail_calls=1)
        result = xsdf.disambiguate_document(figure1_xml)
        assert xsdf.sphere_memo is None  # memoized -> fresh rung
        assert xsdf.degrade_stats["memo_disabled"] == 1
        assert result.to_dict() == baseline.to_dict()

    def test_prune_fault_falls_back_to_exhaustive(
        self, lexicon, figure1_xml, monkeypatch
    ):
        xsdf = XSDF(lexicon, XSDFConfig())
        assert xsdf._prune

        def _boom(*args, **kwargs):
            raise RuntimeError("injected upper_bound fault")

        monkeypatch.setattr(xsdf._similarity, "upper_bound", _boom)
        result = xsdf.disambiguate_document(figure1_xml)
        assert not xsdf._prune
        assert xsdf.degrade_stats["prune_disabled"] == 1
        # The exhaustive rung equals a prune=False run exactly (pruned
        # runs only omit provably-losing candidates from the payload).
        baseline = XSDF(
            lexicon, XSDFConfig(prune=False)
        ).disambiguate_document(figure1_xml)
        assert result.to_dict() == baseline.to_dict()
