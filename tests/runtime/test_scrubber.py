"""The shard scrubber: incremental CRC passes, quarantine, repair.

Driven synchronously through :meth:`ShardScrubber.step` so every
damage kind is deterministic: a clean shard completes passes, a seeded
bit flip is caught by the body CRC (not the attach-time header check),
truncation and vanishing files get their own typed kinds, quarantine
renames preserve the evidence (with collision suffixes), and repair
re-packs from the source network.  The daemon-thread wrapper is tested
for start/stop idempotence and a clean join.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.runtime import MetricsRegistry, PackedIndex
from repro.runtime.faults import FaultInjector, FaultSpec
from repro.runtime.scrubber import (
    DAMAGE_CRC,
    DAMAGE_MISSING,
    DAMAGE_TRUNCATED,
    STATE_CLEAN,
    STATE_PENDING,
    STATE_QUARANTINED,
    STATE_REPAIRED,
    ScrubTarget,
    ShardScrubber,
)
from repro.runtime.store import write_shard
from repro.semnet.io import save_network


@pytest.fixture(scope="module")
def packed(synthetic_network):
    return PackedIndex(synthetic_network)


@pytest.fixture()
def shard(tmp_path, synthetic_network, packed):
    """A freshly written RXPD shard for the synthetic network."""
    path = tmp_path / "net.rxpd"
    write_shard(packed, path, fingerprint=synthetic_network.fingerprint())
    return os.fspath(path)


def _drain(scrubber, want_event: str, limit: int = 200) -> dict:
    """Step until an event of the wanted kind (or fail the test)."""
    for _ in range(limit):
        event = scrubber.step()
        if event is not None and event["event"] == want_event:
            return event
    raise AssertionError(f"no {want_event!r} event within {limit} steps")


class TestCleanPass:
    def test_small_slices_accumulate_to_a_clean_pass(self, shard):
        scrubber = ShardScrubber(slice_bytes=1024, interval_s=0)
        target = scrubber.add_target(shard)
        assert target.status == STATE_PENDING
        event = _drain(scrubber, "pass-complete")
        assert event["path"] == shard
        assert target.status == STATE_CLEAN
        assert target.passes == 1
        # Passes keep cycling: the scrubber is continuous, not one-shot.
        _drain(scrubber, "pass-complete")
        assert target.passes == 2

    def test_add_target_is_idempotent_by_path(self, shard):
        scrubber = ShardScrubber(interval_s=0)
        first = scrubber.add_target(shard, domain="a")
        again = scrubber.add_target(shard, domain="ignored")
        assert first is again
        assert len(scrubber.targets()) == 1

    def test_reset_targets_replaces_the_set(self, shard):
        scrubber = ShardScrubber(interval_s=0)
        scrubber.add_target(shard)
        scrubber.reset_targets([("/elsewhere/other.rxpd", None, "web")])
        targets = scrubber.targets()
        assert [t.path for t in targets] == ["/elsewhere/other.rxpd"]
        assert targets[0].domain == "web"

    def test_step_without_targets_is_a_no_op(self):
        assert ShardScrubber(interval_s=0).step() is None


class TestDamageKinds:
    def test_seeded_bitrot_is_caught_by_the_body_crc(self, shard):
        metrics = MetricsRegistry()
        seen = []
        scrubber = ShardScrubber(
            slice_bytes=1 << 16, interval_s=0, metrics=metrics,
            on_damage=lambda target, kind: seen.append((target.path, kind)),
            repair=False,
        )
        target = scrubber.add_target(shard)
        injector = FaultInjector(42, [FaultSpec.bitrot()])
        offset = injector.bitrot_shard(shard)
        assert offset is not None and offset >= 32
        event = _drain(scrubber, "damage")
        assert event["kind"] == DAMAGE_CRC
        assert target.status == STATE_QUARANTINED
        assert target.damage == DAMAGE_CRC
        assert seen == [(shard, DAMAGE_CRC)]
        # Quarantine preserved the evidence under a new name.
        assert not os.path.exists(shard)
        assert os.path.exists(target.quarantined_path)
        assert target.quarantined_path.endswith(".quarantined")
        counters = metrics.report()["counters"]
        assert counters["scrub_damage"] == 1
        assert counters["scrub_quarantined"] == 1

    def test_truncation_mid_body_is_typed(self, shard):
        scrubber = ShardScrubber(slice_bytes=1 << 16, interval_s=0,
                                 repair=False)
        scrubber.add_target(shard)
        with open(shard, "r+b") as fh:
            fh.truncate(os.path.getsize(shard) - 100)
        event = _drain(scrubber, "damage")
        assert event["kind"] == DAMAGE_TRUNCATED

    def test_vanished_file_is_missing_not_renamed(self, shard):
        scrubber = ShardScrubber(interval_s=0, repair=False)
        target = scrubber.add_target(shard)
        os.unlink(shard)
        event = _drain(scrubber, "damage")
        assert event["kind"] == DAMAGE_MISSING
        assert target.status == STATE_QUARANTINED
        assert target.quarantined_path is None

    def test_quarantine_name_collisions_get_suffixes(self, shard):
        with open(shard + ".quarantined", "w") as fh:
            fh.write("earlier corpse")
        scrubber = ShardScrubber(slice_bytes=1 << 16, interval_s=0,
                                 repair=False)
        target = scrubber.add_target(shard)
        FaultInjector(42, [FaultSpec.bitrot()]).bitrot_shard(shard)
        _drain(scrubber, "damage")
        assert target.quarantined_path == shard + ".quarantined.1"
        assert os.path.exists(target.quarantined_path)

    def test_atomic_replacement_mid_pass_restarts_not_damages(
            self, shard, tmp_path, synthetic_network, packed):
        scrubber = ShardScrubber(slice_bytes=256, interval_s=0)
        scrubber.add_target(shard)
        assert scrubber.step() is None  # pass begun, cursor mid-body
        replacement = tmp_path / "replacement.rxpd"
        write_shard(packed, replacement,
                    fingerprint=synthetic_network.fingerprint())
        os.replace(replacement, shard)
        event = _drain(scrubber, "restart", limit=5)
        assert event["path"] == shard
        # And the new file then verifies clean.
        _drain(scrubber, "pass-complete")

    def test_callback_exception_does_not_break_the_scrubber(self, shard):
        def _explode(target, kind):
            raise RuntimeError("failover hook bug")

        metrics = MetricsRegistry()
        scrubber = ShardScrubber(slice_bytes=1 << 16, interval_s=0,
                                 metrics=metrics, on_damage=_explode,
                                 repair=False)
        target = scrubber.add_target(shard)
        FaultInjector(42, [FaultSpec.bitrot()]).bitrot_shard(shard)
        _drain(scrubber, "damage")
        assert target.status == STATE_QUARANTINED
        events = [e["event"] for e in metrics.report()["events"]]
        assert "scrub_callback_failed" in events


class TestRepair:
    def test_quarantined_shard_is_repacked_from_its_network(
            self, shard, tmp_path, synthetic_network):
        network_path = tmp_path / "net.json"
        save_network(synthetic_network, network_path)
        scrubber = ShardScrubber(slice_bytes=1 << 16, interval_s=0,
                                 metrics=MetricsRegistry(), repair=True)
        target = scrubber.add_target(
            shard, network_path=os.fspath(network_path)
        )
        FaultInjector(42, [FaultSpec.bitrot()]).bitrot_shard(shard)
        _drain(scrubber, "damage")
        assert target.status == STATE_QUARANTINED
        event = _drain(scrubber, "repaired")
        assert event["path"] == shard
        assert target.status == STATE_REPAIRED
        assert os.path.exists(shard)
        # The re-packed shard then scrubs clean.
        _drain(scrubber, "pass-complete")
        assert target.status == STATE_CLEAN

    def test_no_network_path_means_no_repair(self, shard):
        scrubber = ShardScrubber(slice_bytes=1 << 16, interval_s=0,
                                 repair=True)
        target = scrubber.add_target(shard)  # no network_path
        FaultInjector(42, [FaultSpec.bitrot()]).bitrot_shard(shard)
        _drain(scrubber, "damage")
        # Nothing left to scrub: the target is quarantined and
        # unrepairable, so steps go idle instead of spinning.
        assert scrubber.step() is None
        assert target.status == STATE_QUARANTINED

    def test_failed_repair_keeps_the_quarantine(self, shard, tmp_path):
        scrubber = ShardScrubber(slice_bytes=1 << 16, interval_s=0,
                                 metrics=MetricsRegistry(), repair=True)
        target = scrubber.add_target(
            shard, network_path=os.fspath(tmp_path / "no-such-network.json")
        )
        FaultInjector(42, [FaultSpec.bitrot()]).bitrot_shard(shard)
        _drain(scrubber, "damage")
        event = _drain(scrubber, "repair-failed", limit=5)
        assert event["path"] == shard
        assert target.status == STATE_QUARANTINED
        assert "repair failed" in target.last_error


class TestDaemonThread:
    def test_start_stop_join_and_idempotence(self, shard):
        scrubber = ShardScrubber(slice_bytes=1024, interval_s=0.001)
        scrubber.add_target(shard)
        try:
            scrubber.start()
            scrubber.start()  # idempotent
            assert scrubber.running
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if any(t.passes > 0 for t in scrubber.targets()):
                    break
                time.sleep(0.005)
            assert any(t.passes > 0 for t in scrubber.targets())
        finally:
            scrubber.stop()
        assert not scrubber.running
        scrubber.stop()  # idempotent after the join

    def test_stats_shape_for_healthz(self, shard):
        scrubber = ShardScrubber(slice_bytes=1024, interval_s=0.5,
                                 repair=False)
        scrubber.add_target(shard, domain="default")
        stats = scrubber.stats()
        assert stats["running"] is False
        assert stats["quarantined"] == 0
        assert stats["targets"][0]["path"] == shard
        assert stats["targets"][0]["domain"] == "default"
        assert stats["targets"][0]["status"] == STATE_PENDING


class TestValidation:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            ShardScrubber(slice_bytes=0)
        with pytest.raises(ValueError):
            ShardScrubber(interval_s=-1)

    def test_target_to_dict_includes_damage_fields(self):
        target = ScrubTarget(path="/s.rxpd", domain="d",
                             status=STATE_QUARANTINED, damage=DAMAGE_CRC,
                             quarantined_path="/s.rxpd.quarantined",
                             last_error="body CRC mismatch")
        payload = target.to_dict()
        assert payload["damage"] == DAMAGE_CRC
        assert payload["quarantined_path"] == "/s.rxpd.quarantined"
        assert payload["last_error"] == "body CRC mismatch"
