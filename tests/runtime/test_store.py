"""RXPD shard store and registry: persistence, damage, routing, pools.

Four contracts are pinned here:

* **shard round-trip** — ``write_shard`` → ``from_mmap`` reproduces
  every table exactly with ``backing == "mmap"``, and a truncated,
  corrupted, or mismatched shard raises the typed
  :class:`PackedIndexError` family instead of mis-attaching;
* **resilience ladder** — mmap attach → in-memory packed build → dict
  index all produce bit-identical batch JSONL (degrading the backing
  never changes a score);
* **registry** — the TOML manifest loads, attaches LRU-bounded,
  degrades shardless domains to heap builds, and routes documents by
  lexicon coverage deterministically;
* **worker shipping** — pool workers attach a shard-backed index by
  *path* (``shard_bytes > 0``, ``shm_bytes == 0``), with results
  identical to the shm/serial paths.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.runtime import (
    BatchExecutor,
    PackedIndex,
    PackedIndexCRCError,
    PackedIndexError,
    PackedIndexTruncatedError,
    SemanticIndex,
    NetworkRegistry,
    RegistryError,
    read_shard_header,
    verify_shard,
    write_shard,
)
from repro.runtime.store import MmapIndexHandle, document_terms
from repro.semnet.generator import GeneratorConfig, generate_network
from repro.semnet.io import save_network

from .test_pack import _assert_query_parity, _sample_pairs


@pytest.fixture()
def lexicon_shard(lexicon, tmp_path):
    """The curated lexicon packed to an RXPD shard (fingerprinted)."""
    path = str(tmp_path / "lexicon.rxpd")
    write_shard(PackedIndex(lexicon), path, fingerprint=lexicon.fingerprint())
    return path


def _attach(path, **kwargs):
    return PackedIndex.from_mmap(path, **kwargs)


class TestShardRoundTrip:
    def test_mmap_attach_reproduces_every_query(
        self, lexicon, lexicon_index, lexicon_shard
    ):
        packed = _attach(lexicon_shard)
        try:
            assert packed.backing == "mmap"
            assert packed.shard_path == lexicon_shard
            assert len(packed) == len(lexicon)
            pairs = _sample_pairs(lexicon)
            _assert_query_parity(lexicon, lexicon_index, packed, pairs)
        finally:
            packed.release_shared()

    def test_attach_defers_decode_then_len_is_cheap(self, lexicon_shard):
        packed = _attach(lexicon_shard)
        try:
            # __len__ must not force materialization (the zero-copy
            # cold-start contract: attach + size is decode-free).
            assert len(packed) > 0
            assert packed._lazy_blobs is not None
        finally:
            packed.release_shared()

    def test_write_is_atomic_no_temp_residue(self, lexicon, tmp_path):
        path = tmp_path / "atomic.rxpd"
        write_shard(PackedIndex(lexicon), path)
        leftovers = [p for p in os.listdir(tmp_path) if ".tmp." in p]
        assert leftovers == []
        assert path.is_file()

    def test_header_reports_size_and_fingerprint(
        self, lexicon, lexicon_shard, tmp_path
    ):
        header = read_shard_header(lexicon_shard)
        assert header["version"] == 1
        assert header["file_bytes"] == os.path.getsize(lexicon_shard)
        assert header["body_bytes"] == header["file_bytes"] - 32
        assert lexicon.fingerprint().startswith(header["fingerprint"])
        # Unstamped shards report no fingerprint at all.
        bare = str(tmp_path / "bare.rxpd")
        write_shard(PackedIndex(lexicon), bare)
        assert read_shard_header(bare)["fingerprint"] is None

    def test_verify_shard_passes_on_intact_file(self, lexicon, lexicon_shard):
        stats = verify_shard(lexicon_shard)
        assert stats["concepts"] == len(lexicon)
        assert stats["shard_bytes"] == os.path.getsize(lexicon_shard)

    def test_release_shared_materializes_to_heap(
        self, lexicon, lexicon_index, lexicon_shard
    ):
        packed = _attach(lexicon_shard)
        packed.release_shared()
        assert packed.backing == "heap"
        pairs = _sample_pairs(lexicon, n_pairs=40)
        _assert_query_parity(lexicon, lexicon_index, packed, pairs)

    def test_pickle_of_mmap_index_round_trips(self, lexicon, lexicon_shard):
        packed = _attach(lexicon_shard)
        try:
            clone = pickle.loads(pickle.dumps(packed))
        finally:
            packed.release_shared()
        assert clone.hypernym_closure(next(iter(lexicon)).id) == \
            packed.hypernym_closure(next(iter(lexicon)).id)


class TestDamagedShards:
    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            _attach(str(tmp_path / "nope.rxpd"))

    def test_short_header_raises_truncated(self, tmp_path, lexicon_shard):
        stub = tmp_path / "stub.rxpd"
        stub.write_bytes(open(lexicon_shard, "rb").read()[:16])
        with pytest.raises(PackedIndexTruncatedError):
            _attach(str(stub))
        with pytest.raises(PackedIndexTruncatedError):
            read_shard_header(str(stub))

    def test_bad_magic_raises(self, tmp_path, lexicon_shard):
        payload = bytearray(open(lexicon_shard, "rb").read())
        payload[:4] = b"NOPE"
        bad = tmp_path / "bad.rxpd"
        bad.write_bytes(payload)
        with pytest.raises(PackedIndexError):
            _attach(str(bad))

    def test_mid_section_truncation_raises_truncated(
        self, tmp_path, lexicon_shard
    ):
        payload = open(lexicon_shard, "rb").read()
        for fraction in (0.3, 0.7, 0.95):
            cut = tmp_path / f"cut-{fraction}.rxpd"
            cut.write_bytes(payload[: int(len(payload) * fraction)])
            with pytest.raises(PackedIndexTruncatedError):
                _attach(str(cut))

    def test_flipped_body_byte_fails_crc_verify(
        self, tmp_path, lexicon_shard
    ):
        payload = bytearray(open(lexicon_shard, "rb").read())
        payload[len(payload) // 2] ^= 0xFF
        bad = tmp_path / "crc.rxpd"
        bad.write_bytes(payload)
        with pytest.raises(PackedIndexCRCError):
            _attach(str(bad), verify=True)
        with pytest.raises(PackedIndexCRCError):
            verify_shard(str(bad))

    def test_fingerprint_mismatch_raises(self, lexicon_shard):
        with pytest.raises(PackedIndexError):
            _attach(lexicon_shard, expect_fingerprint="ab" * 32)

    def test_matching_fingerprint_attaches(self, lexicon, lexicon_shard):
        packed = _attach(
            lexicon_shard, expect_fingerprint=lexicon.fingerprint()
        )
        packed.release_shared()


class TestResilienceLadder:
    def test_mmap_packed_dict_batches_are_bit_identical(
        self, lexicon, lexicon_shard, figure1_xml
    ):
        """Every rung of the ladder yields the same JSONL bytes."""
        docs = [(f"doc-{i}", figure1_xml) for i in range(3)]
        outputs = []
        for index in (
            _attach(lexicon_shard),          # mmap shard
            PackedIndex(lexicon),            # in-memory packed
            SemanticIndex(lexicon),          # dict-keyed
        ):
            with BatchExecutor(lexicon, index=index) as executor:
                records = executor.run(docs)
            outputs.append([r.to_json_line() for r in records])
        assert outputs[0] == outputs[1] == outputs[2]


class TestWorkerShipping:
    def test_pool_workers_attach_shard_by_path(
        self, lexicon, lexicon_shard, figure1_xml
    ):
        """A shard-backed index ships as a path, not an shm payload."""
        docs = [(f"doc-{i}", figure1_xml) for i in range(4)]
        index = _attach(lexicon_shard)
        with BatchExecutor(
            lexicon, workers=2, index=index, oversubscribe=True
        ) as executor:
            parallel = [r.to_json_line() for r in executor.run(docs)]
            stats = executor.runtime_stats()
        index.release_shared()
        assert stats["shard_bytes"] == os.path.getsize(lexicon_shard)
        assert stats["shm_bytes"] == 0
        with BatchExecutor(lexicon) as serial_executor:
            serial = [r.to_json_line() for r in serial_executor.run(docs)]
        assert parallel == serial

    def test_handle_is_a_small_frozen_ticket(self, lexicon_shard):
        handle = MmapIndexHandle(
            path=lexicon_shard, size=os.path.getsize(lexicon_shard)
        )
        assert len(pickle.dumps(handle)) < 500
        with pytest.raises(AttributeError):
            handle.path = "elsewhere"


def _registry_tree(tmp_path, shard_for=("alpha",), fallback=()):
    """Two-domain manifest: disjoint synthetic vocabularies."""
    nets = {}
    for name, seed in (("alpha", 101), ("beta", 202)):
        net = generate_network(GeneratorConfig(
            n_concepts=120, seed=seed, gloss_style="local"
        ))
        save_network(net, str(tmp_path / f"{name}.network.json"))
        if name in shard_for:
            write_shard(
                PackedIndex(net),
                str(tmp_path / f"{name}.rxpd"),
                fingerprint=net.fingerprint(),
            )
        nets[name] = net
    fallback_line = (
        "fallback = [{}]\n".format(
            ", ".join(f'"{fb}"' for fb in fallback)
        ) if fallback else ""
    )
    manifest = tmp_path / "registry.toml"
    manifest.write_text(
        'default = "alpha"\n'
        '\n'
        '[networks.alpha]\n'
        'network = "alpha.network.json"\n'
        + ('shard = "alpha.rxpd"\n' if "alpha" in shard_for else "")
        + fallback_line
        + '\n'
        '[networks.beta]\n'
        'network = "beta.network.json"\n'
        + ('shard = "beta.rxpd"\n' if "beta" in shard_for else "")
    )
    return str(manifest), nets


def _doc_for(network, n_words=8):
    """An XML document speaking ``network``'s vocabulary."""
    words = sorted(network.words())[:n_words]
    body = "".join(f"<{w}>{w}</{w}>" for w in words)
    return f"<record>{body}</record>"


class TestRegistry:
    def test_load_attach_and_backings(self, tmp_path):
        manifest, nets = _registry_tree(tmp_path, shard_for=("alpha",))
        with NetworkRegistry.load(manifest) as registry:
            assert registry.domains() == ("alpha", "beta")
            assert registry.default_domain == "alpha"
            assert registry.attach("alpha").index.backing == "mmap"
            # No shard declared: the ladder builds in-memory instead.
            assert registry.attach("beta").index.backing == "heap"
            assert registry.stats()["attached"] == 2

    def test_attach_verifies_fingerprints_when_asked(self, tmp_path):
        manifest, nets = _registry_tree(
            tmp_path, shard_for=("alpha", "beta")
        )
        registry = NetworkRegistry.load(manifest, verify_fingerprints=True)
        try:
            assert registry.attach("alpha").index.backing == "mmap"
        finally:
            registry.close()

    def test_stale_shard_degrades_to_heap_build(self, tmp_path):
        manifest, nets = _registry_tree(tmp_path, shard_for=("alpha",))
        # Overwrite alpha's shard with beta's tables: the fingerprint
        # check must reject it and the attach degrade to a heap build
        # over the *correct* network.
        write_shard(
            PackedIndex(nets["beta"]),
            str(tmp_path / "alpha.rxpd"),
            fingerprint=nets["beta"].fingerprint(),
        )
        registry = NetworkRegistry.load(manifest, verify_fingerprints=True)
        try:
            attached = registry.attach("alpha")
            assert attached.index.backing == "heap"
            assert len(attached.index) == len(nets["alpha"])
        finally:
            registry.close()

    def test_lru_eviction_keeps_evicted_index_usable(self, tmp_path):
        manifest, nets = _registry_tree(tmp_path, shard_for=("alpha",))
        registry = NetworkRegistry.load(manifest, max_attached=1)
        try:
            alpha = registry.attach("alpha")
            cid = next(iter(nets["alpha"])).id
            before = alpha.index.hypernym_closure(cid)
            registry.attach("beta")  # evicts alpha
            assert registry.stats()["attached"] == 1
            assert registry.stats()["evictions"] == 1
            # Eviction released the mmap but materialized first: the
            # index a session still holds keeps answering identically.
            assert alpha.index.backing == "heap"
            assert alpha.index.hypernym_closure(cid) == before
        finally:
            registry.close()

    def test_routing_prefers_covering_fallback(self, tmp_path):
        manifest, nets = _registry_tree(
            tmp_path, shard_for=(), fallback=("beta",)
        )
        registry = NetworkRegistry.load(manifest)
        try:
            home, cov = registry.route(_doc_for(nets["alpha"]))
            assert home == "alpha" and cov > 0.8
            away, away_cov = registry.route(_doc_for(nets["beta"]))
            assert away == "beta" and away_cov > 0.8
            assert registry.stats()["route_fallbacks"] == 1
        finally:
            registry.close()

    def test_routing_tie_keeps_primary(self, tmp_path):
        manifest, nets = _registry_tree(
            tmp_path, shard_for=(), fallback=("beta",)
        )
        registry = NetworkRegistry.load(manifest)
        try:
            # No alphabetic terms: every coverage is 0.0, a tie — the
            # primary must win deterministically.
            name, cov = registry.route("<a1><b2/></a1>")
            assert name == "alpha" and cov == 0.0
        finally:
            registry.close()

    def test_unknown_domain_and_bad_manifests_raise(self, tmp_path):
        manifest, _ = _registry_tree(tmp_path)
        registry = NetworkRegistry.load(manifest)
        try:
            with pytest.raises(RegistryError):
                registry.entry("gamma")
        finally:
            registry.close()
        broken = tmp_path / "broken.toml"
        broken.write_text("default = [not toml")
        with pytest.raises(RegistryError):
            NetworkRegistry.load(str(broken))
        empty = tmp_path / "empty.toml"
        empty.write_text('default = "x"\n')
        with pytest.raises(RegistryError):
            NetworkRegistry.load(str(empty))
        nofb = tmp_path / "nofb.toml"
        nofb.write_text(
            '[networks.a]\nnetwork = "a.json"\nfallback = ["ghost"]\n'
        )
        with pytest.raises(RegistryError):
            NetworkRegistry.load(str(nofb))


class TestDamageMarks:
    def test_header_exposes_the_body_crc(self, lexicon_shard):
        header = read_shard_header(lexicon_shard)
        assert isinstance(header["crc"], int)
        # The stamped CRC is the scrubber's ground truth: it must match
        # an independent recomputation over the body bytes.
        import zlib
        with open(lexicon_shard, "rb") as fh:
            fh.seek(32)
            body = fh.read(header["body_bytes"])
        assert zlib.crc32(body) == header["crc"]

    def test_mark_damaged_drops_mmap_attachments_without_reading(
            self, tmp_path):
        manifest, nets = _registry_tree(tmp_path, shard_for=("alpha",))
        registry = NetworkRegistry.load(manifest)
        try:
            alpha = registry.attach("alpha")
            assert alpha.index.backing == "mmap"
            shard_path = registry.entry("alpha").shard_path
            affected = registry.mark_damaged(shard_path)
            assert affected == ("alpha",)
            assert registry.stats()["damaged"] == [shard_path]
            # Dropped, not evicted: the damaged mapping must not be
            # read to materialize, so the old handle stays mmap-backed
            # (sessions degrade through the per-request ladder instead).
            assert alpha.index.backing == "mmap"
            assert registry.stats()["attached"] == 0
        finally:
            registry.close()

    def test_attach_skips_condemned_shard_and_heap_builds(self, tmp_path):
        manifest, nets = _registry_tree(tmp_path, shard_for=("alpha",))
        registry = NetworkRegistry.load(manifest)
        try:
            shard_path = registry.entry("alpha").shard_path
            registry.mark_damaged(shard_path)
            attached = registry.attach("alpha")
            assert attached.index.backing == "heap"
            assert len(attached.index) == len(nets["alpha"])
            # clear_damaged (post-repair reload) restores the fast
            # path; close() first so the next attach is a real miss.
            registry.close()
            registry.clear_damaged()
            assert registry.attach("alpha").index.backing == "mmap"
        finally:
            registry.close()

    def test_mark_damaged_leaves_heap_attachments_alone(self, tmp_path):
        manifest, nets = _registry_tree(tmp_path, shard_for=("alpha",))
        registry = NetworkRegistry.load(manifest)
        try:
            shard_path = registry.entry("alpha").shard_path
            registry.mark_damaged(shard_path)
            registry.attach("alpha")  # heap build under the mark
            # A second damage report for the same shard must not drop
            # the heap fallback that replaced it.
            assert registry.mark_damaged(shard_path) == ()
            assert registry.stats()["attached"] == 1
        finally:
            registry.close()


class TestDocumentTerms:
    def test_terms_are_distinct_lowercased_and_ordered(self):
        terms = document_terms("<Book><title>The BOOK of books</title></Book>")
        assert terms == ("book", "title", "the", "of", "books")

    def test_malformed_xml_still_yields_terms(self):
        assert "broken" in document_terms("<broken <<< &&& markup")
