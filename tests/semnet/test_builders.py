"""Unit tests for the network builder."""

from __future__ import annotations

import pytest

from repro.semnet.builders import NetworkBuilder
from repro.semnet.concepts import Relation


class TestDeclarations:
    def test_forward_references_resolved(self):
        b = NetworkBuilder()
        # Child declared before its hypernym.
        b.synset("child", ["child"], "g", hypernym="parent")
        b.synset("parent", ["parent"], "g")
        network = b.build()
        assert network.hypernyms("child") == ["parent"]

    def test_duplicate_synset_rejected_at_declaration(self):
        b = NetworkBuilder()
        b.synset("x", ["x"], "g")
        with pytest.raises(ValueError, match="declared twice"):
            b.synset("x", ["x"], "g")

    def test_unresolved_reference_fails_at_build(self):
        b = NetworkBuilder()
        b.synset("a", ["a"], "g", hypernym="ghost")
        with pytest.raises(KeyError):
            b.build()

    def test_multiple_hypernyms(self):
        b = NetworkBuilder()
        b.synset("root1", ["r1"], "g")
        b.synset("root2", ["r2"], "g")
        b.synset("both", ["both"], "g", hypernym=["root1", "root2"])
        network = b.build()
        assert set(network.hypernyms("both")) == {"root1", "root2"}

    def test_all_relation_kinds(self):
        b = NetworkBuilder()
        b.synset("whole", ["whole"], "g")
        b.synset("group", ["group"], "g")
        b.synset("peer", ["peer"], "g")
        b.synset(
            "x", ["x"], "g",
            part_of="whole", member_of="group", similar_to="peer",
        )
        network = b.build()
        assert network.neighbors("x", [Relation.PART_HOLONYM]) == ["whole"]
        assert network.neighbors("x", [Relation.MEMBER_HOLONYM]) == ["group"]
        assert network.neighbors("x", [Relation.SIMILAR]) == ["peer"]

    def test_explicit_relation_call(self):
        b = NetworkBuilder()
        b.synset("a", ["a"], "g")
        b.synset("b", ["b"], "g")
        b.relation("a", Relation.DERIVATION, "b")
        network = b.build()
        assert network.neighbors("a", [Relation.DERIVATION]) == ["b"]

    def test_synset_returns_id(self):
        b = NetworkBuilder()
        assert b.synset("a", ["a"], "g") == "a"

    def test_pos_and_frequency_carried(self):
        b = NetworkBuilder()
        b.synset("a", ["a"], "g", pos="v", freq=7)
        concept = b.build().concept("a")
        assert concept.pos == "v"
        assert concept.frequency == 7

    def test_builder_named_network(self):
        assert NetworkBuilder("custom").build().name == "custom"
