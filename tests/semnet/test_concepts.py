"""Unit tests for concepts and relation types."""

from __future__ import annotations

import pytest

from repro.semnet.concepts import Concept, Edge, Relation


class TestRelations:
    def test_taxonomic_inverses(self):
        assert Relation.HYPERNYM.inverse is Relation.HYPONYM
        assert Relation.HYPONYM.inverse is Relation.HYPERNYM

    def test_part_inverses(self):
        assert Relation.PART_MERONYM.inverse is Relation.PART_HOLONYM
        assert Relation.MEMBER_HOLONYM.inverse is Relation.MEMBER_MERONYM

    def test_symmetric_relations(self):
        for relation in (Relation.SIMILAR, Relation.ATTRIBUTE,
                         Relation.DERIVATION):
            assert relation.inverse is relation

    def test_inverse_is_involution(self):
        for relation in Relation:
            assert relation.inverse.inverse is relation

    def test_taxonomic_flag(self):
        assert Relation.HYPERNYM.is_taxonomic
        assert Relation.HYPONYM.is_taxonomic
        assert not Relation.PART_MERONYM.is_taxonomic


class TestConcept:
    def test_label_is_first_word(self):
        concept = Concept("star.n.02", ("star", "lead"), "a principal actor")
        assert concept.label == "star"
        assert concept.synonyms == ("star", "lead")

    def test_words_lowercased(self):
        concept = Concept("x", ("Star", "LEAD"), "gloss")
        assert concept.words == ("star", "lead")

    def test_empty_words_rejected(self):
        with pytest.raises(ValueError):
            Concept("x", (), "gloss")

    def test_gloss_tokens_stemmed_and_filtered(self):
        concept = Concept(
            "x", ("line",), "the lines spoken by an actor in plays"
        )
        tokens = concept.gloss_tokens()
        assert "line" in tokens          # "lines" stemmed
        assert "the" not in tokens       # stop word removed
        assert "plai" in tokens          # "plays" -> Porter stem

    def test_hashable_by_id(self):
        a = Concept("same", ("w",), "g1")
        b = Concept("same", ("v",), "g2")
        assert hash(a) == hash(b)

    def test_edge_inverse(self):
        edge = Edge("a", "b", Relation.HYPERNYM)
        assert edge.inverse == Edge("b", "a", Relation.HYPONYM)
