"""Unit tests for the synthetic corpus and the network generator."""

from __future__ import annotations

import pytest

from repro.semnet.builders import NetworkBuilder
from repro.semnet.corpus import (
    count_concept_frequencies,
    generate_corpus,
    weight_network,
    zipf_weights,
)
from repro.semnet.generator import GeneratorConfig, generate_network


@pytest.fixture()
def tiny():
    b = NetworkBuilder()
    b.synset("a1", ["alpha"], "first sense of alpha")
    b.synset("a2", ["alpha"], "second sense of alpha")
    b.synset("b1", ["beta"], "only sense of beta")
    return b.build()


class TestZipf:
    def test_weights_decreasing(self):
        weights = zipf_weights(10)
        assert weights == sorted(weights, reverse=True)

    def test_first_rank_is_one(self):
        assert zipf_weights(5)[0] == 1.0


class TestCorpusGeneration:
    def test_deterministic(self, tiny):
        assert generate_corpus(tiny, 500, seed=3) == \
            generate_corpus(tiny, 500, seed=3)

    def test_different_seeds_differ(self, tiny):
        assert generate_corpus(tiny, 500, seed=3) != \
            generate_corpus(tiny, 500, seed=4)

    def test_vocabulary_is_network_words(self, tiny):
        tokens = generate_corpus(tiny, 200, seed=1)
        assert set(tokens) <= set(tiny.words())

    def test_empty_network_rejected(self):
        from repro.semnet.network import SemanticNetwork
        with pytest.raises(ValueError):
            generate_corpus(SemanticNetwork(), 10)


class TestFrequencyCounting:
    def test_first_sense_gets_largest_share(self, tiny):
        counts = count_concept_frequencies(tiny, ["alpha"] * 100)
        assert counts["a1"] > counts["a2"]
        assert counts["a1"] + counts["a2"] == pytest.approx(100.0)

    def test_monosemous_word_gets_everything(self, tiny):
        counts = count_concept_frequencies(tiny, ["beta"] * 10)
        assert counts["b1"] == pytest.approx(10.0)

    def test_unknown_tokens_ignored(self, tiny):
        counts = count_concept_frequencies(tiny, ["gamma", "delta"])
        assert not counts

    def test_weight_network_sets_frequencies(self, tiny):
        weight_network(tiny, n_tokens=1000, seed=9)
        assert tiny.total_frequency == pytest.approx(1000.0)


class TestSyntheticGenerator:
    def test_deterministic(self):
        cfg = GeneratorConfig(n_concepts=120, seed=5)
        a = generate_network(cfg)
        b = generate_network(cfg)
        assert [c.id for c in a] == [c.id for c in b]
        assert a.stats() == b.stats()

    def test_requested_size(self):
        network = generate_network(GeneratorConfig(n_concepts=200, seed=1))
        assert len(network) == 200

    def test_single_root_taxonomy(self):
        network = generate_network(GeneratorConfig(n_concepts=150, seed=2))
        assert len(network.roots()) == 1

    def test_polysemy_ceiling_respected(self):
        cfg = GeneratorConfig(n_concepts=300, max_polysemy=5, seed=3)
        network = generate_network(cfg)
        assert network.max_polysemy <= 5

    def test_mean_polysemy_controllable(self):
        low = generate_network(
            GeneratorConfig(n_concepts=300, mean_polysemy=1.1, seed=4)
        )
        high = generate_network(
            GeneratorConfig(n_concepts=300, mean_polysemy=4.0, seed=4)
        )
        def mean_polysemy(net):
            words = net.words()
            return sum(net.polysemy(w) for w in words) / len(words)
        assert mean_polysemy(high) > mean_polysemy(low)

    def test_glosses_synthesized(self):
        network = generate_network(GeneratorConfig(n_concepts=50, seed=6))
        assert all(c.gloss for c in network)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            generate_network(GeneratorConfig(n_concepts=0))
