"""Unit tests for information content over the weighted network."""

from __future__ import annotations

import math

import pytest

from repro.semnet.builders import NetworkBuilder
from repro.semnet.ic import InformationContent


@pytest.fixture()
def chain_network():
    """entity -> animal -> dog, plus entity -> rock."""
    b = NetworkBuilder()
    b.synset("entity", ["entity"], "anything", freq=2)
    b.synset("animal", ["animal"], "a living creature",
             hypernym="entity", freq=20)
    b.synset("dog", ["dog"], "a domestic canine",
             hypernym="animal", freq=50)
    b.synset("rock", ["rock"], "a hard mineral object",
             hypernym="entity", freq=8)
    return b.build()


class TestInformationContent:
    def test_ic_decreases_toward_root(self, chain_network):
        ic = InformationContent(chain_network)
        assert ic.ic("entity") < ic.ic("animal") < ic.ic("dog")

    def test_root_probability_is_one(self, chain_network):
        ic = InformationContent(chain_network)
        # Root cumulative count == total mass -> IC == 0.
        assert ic.ic("entity") == pytest.approx(0.0, abs=1e-9)

    def test_ic_finite_with_smoothing(self):
        b = NetworkBuilder()
        b.synset("a", ["a"], "g", freq=100)
        b.synset("b", ["b"], "g", hypernym="a", freq=0.0)
        network = b.build()
        ic = InformationContent(network)
        assert math.isfinite(ic.ic("b"))

    def test_max_ic_is_max_finite(self, chain_network):
        ic = InformationContent(chain_network)
        assert ic.max_ic == max(
            ic.ic(c.id) for c in chain_network
        )

    def test_no_mass_rejected(self):
        b = NetworkBuilder()
        b.synset("a", ["a"], "g")
        network = b.build()
        with pytest.raises(ValueError):
            InformationContent(network, smoothing=0.0)


class TestDerivedSimilarities:
    def test_resnik_is_lcs_ic(self, chain_network):
        ic = InformationContent(chain_network)
        assert ic.resnik("dog", "rock") == pytest.approx(ic.ic("entity"))
        assert ic.resnik("dog", "animal") == pytest.approx(ic.ic("animal"))

    def test_resnik_zero_without_common_ancestor(self):
        b = NetworkBuilder()
        b.synset("a", ["a"], "g", freq=5)
        b.synset("b", ["b"], "g", freq=5)
        ic = InformationContent(b.build())
        assert ic.resnik("a", "b") == 0.0

    def test_lin_identity(self, chain_network):
        ic = InformationContent(chain_network)
        assert ic.lin("dog", "dog") == 1.0

    def test_lin_bounds(self, chain_network):
        ic = InformationContent(chain_network)
        for a in ("entity", "animal", "dog", "rock"):
            for b in ("entity", "animal", "dog", "rock"):
                assert 0.0 <= ic.lin(a, b) <= 1.0

    def test_lin_orders_by_relatedness(self, chain_network):
        ic = InformationContent(chain_network)
        assert ic.lin("dog", "animal") > ic.lin("dog", "rock")

    def test_jiang_conrath_distance(self, chain_network):
        ic = InformationContent(chain_network)
        assert ic.jiang_conrath_distance("dog", "dog") == pytest.approx(0.0)
        assert ic.jiang_conrath_distance("dog", "rock") > \
            ic.jiang_conrath_distance("dog", "animal")
