"""Unit tests for semantic network persistence."""

from __future__ import annotations

import json

import pytest

from repro.semnet import build_lexicon
from repro.semnet.builders import NetworkBuilder
from repro.semnet.concepts import Relation
from repro.semnet.io import (
    FORMAT_NAME,
    NetworkFormatError,
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


@pytest.fixture()
def small():
    b = NetworkBuilder("small")
    b.synset("a", ["alpha", "first"], "the first letter", freq=4)
    b.synset("b", ["beta"], "the second letter", hypernym="a", freq=2)
    b.synset("c", ["gamma"], "the third letter", part_of="a",
             similar_to="b")
    return b.build()


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, small):
        restored = network_from_dict(network_to_dict(small))
        assert restored.name == small.name
        assert [c.id for c in restored] == [c.id for c in small]
        for concept in small:
            copy = restored.concept(concept.id)
            assert copy.words == concept.words
            assert copy.gloss == concept.gloss
            assert copy.frequency == concept.frequency
        assert restored.hypernyms("b") == ["a"]
        assert "a" in restored.neighbors("c", [Relation.PART_HOLONYM])
        assert "b" in restored.neighbors("c", [Relation.SIMILAR])

    def test_file_roundtrip(self, small, tmp_path):
        path = tmp_path / "net.json"
        save_network(small, path)
        restored = load_network(path)
        assert network_to_dict(restored) == network_to_dict(small)

    def test_save_is_canonical(self, small, tmp_path):
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        save_network(small, path_a)
        save_network(load_network(path_a), path_b)
        assert path_a.read_text() == path_b.read_text()

    def test_full_lexicon_roundtrip(self, tmp_path):
        lexicon = build_lexicon()
        path = tmp_path / "lexicon.json"
        save_network(lexicon, path)
        restored = load_network(path)
        assert restored.stats() == lexicon.stats()
        assert restored.polysemy("head") == 33
        # Taxonomy intact: depths agree on a sample.
        for concept_id in ("actor.n.01", "star.n.02", "plant.n.02"):
            assert restored.depth(concept_id) == lexicon.depth(concept_id)

    def test_symmetric_relations_stored_once(self, small):
        document = network_to_dict(small)
        similar = [
            r for r in document["relations"] if r["relation"] == "similar"
        ]
        assert len(similar) == 1


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(NetworkFormatError, match="not a"):
            network_from_dict({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(NetworkFormatError, match="version"):
            network_from_dict({"format": FORMAT_NAME, "version": 99})

    def test_bad_concept_rejected(self):
        with pytest.raises(NetworkFormatError, match="bad concept"):
            network_from_dict({
                "format": FORMAT_NAME, "version": 1,
                "concepts": [{"id": "x"}], "relations": [],
            })

    def test_bad_relation_rejected(self, small):
        document = network_to_dict(small)
        document["relations"].append(
            {"source": "a", "relation": "teleports-to", "target": "b"}
        )
        with pytest.raises(NetworkFormatError, match="bad relation"):
            network_from_dict(document)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(NetworkFormatError, match="invalid JSON"):
            load_network(path)

    def test_saved_file_is_valid_json(self, small, tmp_path):
        path = tmp_path / "net.json"
        save_network(small, path)
        document = json.loads(path.read_text())
        assert document["format"] == FORMAT_NAME
