"""Integrity tests for the curated mini-WordNet lexicon."""

from __future__ import annotations

from repro.datasets import DATASETS
from repro.semnet import build_lexicon
from repro.semnet.lexicon import default_lexicon


class TestStructure:
    def test_single_taxonomy_root(self, lexicon):
        assert lexicon.roots() == ["entity.n.01"]

    def test_substantial_coverage(self, lexicon):
        stats = lexicon.stats()
        assert stats["concepts"] > 450
        assert stats["words"] > 800
        assert stats["directed_edges"] > 1000

    def test_max_polysemy_is_33_head(self, lexicon):
        # The paper cites WordNet 2.1's maximum: 33 senses for "head".
        assert lexicon.max_polysemy == 33
        assert lexicon.polysemy("head") == 33

    def test_every_concept_reaches_the_root(self, lexicon):
        for concept in lexicon:
            closure = lexicon.hypernym_closure(concept.id)
            assert "entity.n.01" in closure, concept.id

    def test_every_concept_has_a_gloss(self, lexicon):
        for concept in lexicon:
            assert concept.gloss.strip(), concept.id

    def test_frequencies_present_for_weighting(self, lexicon):
        weighted = sum(1 for c in lexicon if c.frequency > 0)
        assert weighted / len(lexicon) > 0.95


class TestPaperVocabulary:
    def test_figure1_words_present(self, lexicon):
        for word in ("picture", "film", "movie", "cast", "star", "director",
                     "plot", "genre", "kelly", "stewart", "hitchcock"):
            assert lexicon.has_word(word), word

    def test_kelly_has_three_person_senses(self, lexicon):
        # Grace Kelly, Gene Kelly, Emmett Kelly (paper's introduction).
        assert lexicon.polysemy("kelly") == 3

    def test_star_homonymy(self, lexicon):
        senses = {c.id for c in lexicon.senses("star")}
        assert {"star.n.01", "star.n.02"} <= senses
        assert lexicon.polysemy("star") >= 4

    def test_state_is_heavily_polysemous(self, lexicon):
        # The paper's Table 2 example: 'state' under 'address'.
        assert lexicon.polysemy("state") >= 6

    def test_compound_expressions_present(self, lexicon):
        for expression in ("first name", "last name", "stage direction"):
            assert lexicon.has_word(expression), expression


class TestGoldAnnotationsResolvable:
    def test_every_gold_concept_exists(self, lexicon):
        for spec in DATASETS:
            for label, concept_id in spec.gold.items():
                assert concept_id in lexicon, (spec.name, label, concept_id)

    def test_gold_concept_indeed_covers_label(self, lexicon):
        # Each gold sense must be reachable from its label's senses (or
        # from one of the compound tokens' senses).
        for spec in DATASETS:
            for label, concept_id in spec.gold.items():
                candidates = {c.id for c in lexicon.senses(label)}
                for token in label.split():
                    candidates |= {c.id for c in lexicon.senses(token)}
                assert concept_id in candidates, (spec.name, label)


class TestConstruction:
    def test_build_is_deterministic(self):
        a = build_lexicon()
        b = build_lexicon()
        assert [c.id for c in a] == [c.id for c in b]
        assert a.stats() == b.stats()

    def test_default_lexicon_cached(self):
        assert default_lexicon() is default_lexicon()
