"""Unit tests for the semantic network engine (Definition 2)."""

from __future__ import annotations

import pytest

from repro.semnet.builders import NetworkBuilder
from repro.semnet.concepts import Concept, Relation
from repro.semnet.network import SemanticNetwork, UnknownConceptError


@pytest.fixture()
def toy() -> SemanticNetwork:
    """A small hand-built taxonomy:

        entity
        ├── person ── actor ── star(performer)
        └── object ── body ──  star(celestial)
    plus a part-of link: face part-of person.
    """
    b = NetworkBuilder("toy")
    b.synset("entity", ["entity"], "something that exists", freq=1)
    b.synset("person", ["person"], "a human being",
             hypernym="entity", freq=10)
    b.synset("actor", ["actor", "player"], "a theatrical performer",
             hypernym="person", freq=5)
    b.synset("star.p", ["star", "lead"], "a principal actor",
             hypernym="actor", freq=3)
    b.synset("object", ["object"], "a physical thing",
             hypernym="entity", freq=8)
    b.synset("body", ["body", "celestial body"], "an object in the sky",
             hypernym="object", freq=4)
    b.synset("star.c", ["star"], "a ball of burning gas",
             hypernym="body", freq=6)
    b.synset("face", ["face"], "the front of the head",
             part_of="person", freq=2)
    return b.build()


class TestLookups:
    def test_len_and_contains(self, toy):
        assert len(toy) == 8
        assert "actor" in toy
        assert "nothing" not in toy

    def test_concept_access(self, toy):
        assert toy.concept("actor").label == "actor"

    def test_unknown_concept_raises(self, toy):
        with pytest.raises(UnknownConceptError):
            toy.concept("missing")

    def test_senses_in_registration_order(self, toy):
        assert [c.id for c in toy.senses("star")] == ["star.p", "star.c"]

    def test_has_word_case_insensitive(self, toy):
        assert toy.has_word("Star")
        assert toy.has_word("celestial body")
        assert not toy.has_word("galaxy")

    def test_polysemy(self, toy):
        assert toy.polysemy("star") == 2
        assert toy.polysemy("actor") == 1
        assert toy.polysemy("unknown") == 0

    def test_max_polysemy(self, toy):
        assert toy.max_polysemy == 2

    def test_words(self, toy):
        assert "celestial body" in toy.words()


class TestRelations:
    def test_inverse_added_automatically(self, toy):
        assert "actor" in toy.hyponyms("person")
        assert "person" in toy.hypernyms("actor")

    def test_part_relations(self, toy):
        related = dict((r, t) for r, t in toy.related("face"))
        assert related[Relation.PART_HOLONYM] == "person"
        assert "face" in toy.neighbors("person", [Relation.PART_MERONYM])

    def test_neighbors_filterable(self, toy):
        only_taxonomic = toy.neighbors("person", [Relation.HYPONYM])
        assert set(only_taxonomic) == {"actor"}

    def test_edges_enumerable(self, toy):
        edges = toy.edges()
        assert any(
            e.source == "actor" and e.relation is Relation.HYPERNYM
            for e in edges
        )

    def test_duplicate_relation_ignored(self, toy):
        before = len(toy.edges())
        toy.add_relation("actor", Relation.HYPERNYM, "person")
        assert len(toy.edges()) == before

    def test_relation_to_unknown_raises(self, toy):
        with pytest.raises(UnknownConceptError):
            toy.add_relation("actor", Relation.HYPERNYM, "ghost")

    def test_duplicate_concept_rejected(self, toy):
        with pytest.raises(ValueError):
            toy.add_concept(Concept("actor", ("actor",), "again"))


class TestSpheres:
    def test_sphere_includes_center_at_zero(self, toy):
        sphere = toy.sphere("actor", 1)
        assert sphere["actor"] == 0

    def test_sphere_radius_one(self, toy):
        sphere = toy.sphere("actor", 1)
        assert set(sphere) == {"actor", "person", "star.p"}

    def test_sphere_crosses_all_relation_types(self, toy):
        sphere = toy.sphere("face", 2)
        assert "actor" in sphere  # face -part-of-> person -> actor

    def test_ring_exact_distance(self, toy):
        ring = toy.ring("actor", 2)
        assert set(ring) == {"entity", "face"}

    def test_sphere_distances_are_minimal(self, toy):
        sphere = toy.sphere("star.p", 4)
        assert sphere["person"] == 2
        assert sphere["entity"] == 3

    def test_sphere_relation_filter(self, toy):
        sphere = toy.sphere("person", 1, relations=[Relation.HYPERNYM])
        assert set(sphere) == {"person", "entity"}


class TestTaxonomy:
    def test_roots_are_hypernym_free(self, toy):
        # face only has a part-of link, so it is an IS-A root too.
        assert set(toy.roots()) == {"entity", "face"}

    def test_depths(self, toy):
        assert toy.depth("entity") == 0
        assert toy.depth("star.p") == 3
        assert toy.depth("star.c") == 3

    def test_max_taxonomy_depth(self, toy):
        assert toy.max_taxonomy_depth == 3

    def test_hypernym_closure(self, toy):
        closure = toy.hypernym_closure("star.p")
        assert closure == {"star.p": 0, "actor": 1, "person": 2, "entity": 3}

    def test_lcs_same_branch(self, toy):
        assert toy.lowest_common_subsumer("star.p", "actor") == "actor"

    def test_lcs_across_branches(self, toy):
        assert toy.lowest_common_subsumer("star.p", "star.c") == "entity"

    def test_lcs_of_identical(self, toy):
        assert toy.lowest_common_subsumer("actor", "actor") == "actor"

    def test_taxonomic_distance(self, toy):
        assert toy.taxonomic_distance("star.p", "star.c") == 6
        assert toy.taxonomic_distance("actor", "person") == 1

    def test_part_relations_do_not_affect_taxonomy(self, toy):
        # face has no hypernym: it is its own root for IS-A purposes.
        assert toy.depth("face") == 0
        assert toy.lowest_common_subsumer("face", "actor") is None
        assert toy.taxonomic_distance("face", "actor") is None


class TestFrequencies:
    def test_cumulative_includes_descendants(self, toy):
        # person(10) + actor(5) + star.p(3) = 18
        assert toy.cumulative_frequency("person") == 18

    def test_leaf_cumulative_is_own(self, toy):
        assert toy.cumulative_frequency("star.c") == 6

    def test_total_frequency(self, toy):
        assert toy.total_frequency == 1 + 10 + 5 + 3 + 8 + 4 + 6 + 2

    def test_set_frequency_invalidates_cache(self, toy):
        toy.cumulative_frequency("person")
        toy.set_frequency("star.p", 100)
        assert toy.cumulative_frequency("person") == 10 + 5 + 100

    def test_stats_summary(self, toy):
        stats = toy.stats()
        assert stats["concepts"] == 8
        assert stats["roots"] == 2  # entity + face (no hypernym)
        assert stats["max_polysemy"] == 2
