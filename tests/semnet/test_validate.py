"""Unit tests for semantic network validation."""

from __future__ import annotations

from repro.semnet.builders import NetworkBuilder
from repro.semnet.concepts import Concept, Relation
from repro.semnet.network import SemanticNetwork
from repro.semnet.validate import validate_network


def build(populate):
    b = NetworkBuilder()
    populate(b)
    return b.build()


class TestHealthyNetworks:
    def test_clean_network_passes(self):
        network = build(lambda b: (
            b.synset("a", ["alpha"], "the first", freq=3),
            b.synset("b", ["beta"], "the second", hypernym="a", freq=2),
        ))
        report = validate_network(network)
        assert report.ok
        assert not report.issues

    def test_curated_lexicon_is_valid(self, lexicon):
        report = validate_network(lexicon)
        assert report.ok, report.errors()
        # A single root and frequencies everywhere: no warnings either.
        assert not report.warnings(), report.warnings()


class TestErrors:
    def test_empty_network(self):
        report = validate_network(SemanticNetwork())
        assert not report.ok
        assert report.errors()[0].code == "empty"

    def test_isa_cycle_detected(self):
        network = build(lambda b: (
            b.synset("a", ["alpha"], "g", freq=1),
            b.synset("b", ["beta"], "g", hypernym="a", freq=1),
        ))
        # Introduce a cycle a -> b -> a.
        network.add_relation("a", Relation.HYPERNYM, "b")
        report = validate_network(network)
        assert not report.ok
        assert any(issue.code == "isa-cycle" for issue in report.errors())

    def test_duplicate_words_detected(self):
        network = SemanticNetwork()
        concept = Concept("x", ("same", "other"), "g", frequency=1)
        # Concepts are plain dataclasses: a caller can corrupt the word
        # tuple after construction, which validation must catch.
        concept.words = ("same", "same")
        network.add_concept(concept)
        report = validate_network(network)
        assert any(issue.code == "duplicate-words" for issue in report.errors())


class TestWarnings:
    def test_multiple_roots_warned(self):
        network = build(lambda b: (
            b.synset("a", ["alpha"], "g", freq=1),
            b.synset("b", ["beta"], "g", freq=1),
        ))
        report = validate_network(network)
        assert report.ok
        assert any(i.code == "multiple-roots" for i in report.warnings())

    def test_empty_gloss_warned(self):
        network = build(lambda b: (
            b.synset("a", ["alpha"], "", freq=1),
        ))
        report = validate_network(network)
        assert any(i.code == "empty-gloss" for i in report.warnings())

    def test_zero_frequency_warned(self):
        network = build(lambda b: (
            b.synset("a", ["alpha"], "g"),
        ))
        report = validate_network(network)
        assert any(i.code == "no-frequencies" for i in report.warnings())
