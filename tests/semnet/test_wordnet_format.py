"""Tests for the wndb (real WordNet database) loader, using a
hand-written miniature extract in the authentic file format."""

from __future__ import annotations

import pytest

from repro.semnet.concepts import Relation
from repro.semnet.wordnet_format import (
    WordNetFormatError,
    load_wordnet_nouns,
    parse_data_line,
    parse_index_line,
)

#: Miniature data.noun: entity > person > {actor, star(performer)};
#: entity > celestial body > star(sun); star derivationally related to
#: movie-like synset omitted for brevity.  Offsets are 8-digit strings.
DATA_NOUN = """\
  1 This miniature extract follows the wndb(5WN) layout; header lines
  2 begin with two spaces exactly like the real license preamble.
00001000 03 n 01 entity 0 001 ~ 00002000 n 0000 | that which exists
00002000 03 n 01 person 0 002 @ 00001000 n 0000 ~ 00003000 n 0000 | a human being
00003000 03 n 02 actor 0 player 0 002 @ 00002000 n 0000 + 00004000 n 0000 | a theatrical performer
00004000 03 n 02 star 0 principal 0 001 @ 00003000 n 0000 | an actor who plays a principal role
00005000 03 n 02 star 0 sun 1 001 %p 00001000 n 0000 | a hot glowing celestial body
"""

#: Miniature index.noun: 'star' lists the celestial sense FIRST (rank 1)
#: even though data.noun declares the performer sense first.
INDEX_NOUN = """\
  1 header line
actor n 1 0 1 0 00003000
star n 2 0 2 0 00005000 00004000
person n 1 0 1 0 00002000
"""


@pytest.fixture()
def wordnet_dir(tmp_path):
    (tmp_path / "data.noun").write_text(DATA_NOUN, encoding="utf-8")
    (tmp_path / "index.noun").write_text(INDEX_NOUN, encoding="utf-8")
    return tmp_path


class TestLineParsers:
    def test_data_line_words_and_gloss(self):
        offset, words, gloss, pointers = parse_data_line(
            "00003000 03 n 02 actor 0 player 0 002 @ 00002000 n 0000 "
            "+ 00004000 n 0000 | a theatrical performer"
        )
        assert offset == "00003000"
        assert words == ["actor", "player"]
        assert gloss == "a theatrical performer"
        assert (Relation.HYPERNYM, "00002000") in pointers
        assert (Relation.DERIVATION, "00004000") in pointers

    def test_multiword_lemma_cleaned(self):
        _o, words, _g, _p = parse_data_line(
            "00009000 03 n 01 celestial_body 0 000 | a body in the sky"
        )
        assert words == ["celestial body"]

    def test_syntactic_marker_stripped(self):
        _o, words, _g, _p = parse_data_line(
            "00009100 03 n 01 blues(p) 0 000 | a feeling of sadness"
        )
        assert words == ["blues"]

    def test_cross_pos_pointer_skipped(self):
        _o, _w, _g, pointers = parse_data_line(
            "00009200 03 n 01 runner 0 001 + 00000123 v 0000 | one who runs"
        )
        assert pointers == []

    def test_unknown_symbol_skipped(self):
        _o, _w, _g, pointers = parse_data_line(
            "00009300 03 n 01 thing 0 001 ;c 00000001 n 0000 | a thing"
        )
        assert pointers == []

    @pytest.mark.parametrize(
        "line",
        ["too short", "00001 03 n zz entity 0 000 | x",
         "00001 03 n 01 entity 0 bad | x"],
    )
    def test_malformed_data_lines(self, line):
        with pytest.raises(WordNetFormatError):
            parse_data_line(line)

    def test_index_line(self):
        lemma, offsets = parse_index_line("star n 2 0 2 0 00005000 00004000")
        assert lemma == "star"
        assert offsets == ["00005000", "00004000"]

    def test_index_line_with_pointers(self):
        lemma, offsets = parse_index_line("dog n 1 2 @ ~ 1 1 00001234")
        assert lemma == "dog"
        assert offsets == ["00001234"]

    def test_index_count_mismatch(self):
        with pytest.raises(WordNetFormatError):
            parse_index_line("star n 3 0 3 0 00005000 00004000")


class TestLoading:
    def test_concepts_loaded(self, wordnet_dir):
        network = load_wordnet_nouns(wordnet_dir)
        assert len(network) == 5
        assert network.has_word("star")
        assert network.has_word("celestial body") is False  # not in extract
        assert network.polysemy("star") == 2

    def test_taxonomy_from_pointers(self, wordnet_dir):
        network = load_wordnet_nouns(wordnet_dir)
        assert network.hypernyms("star.n.00004000") == ["actor.n.00003000"]
        assert network.depth("star.n.00004000") == 3

    def test_inverse_pointers_merge(self, wordnet_dir):
        # person declares ~ to actor AND actor declares @ to person:
        # the network must not duplicate the edge.
        network = load_wordnet_nouns(wordnet_dir)
        assert network.hyponyms("person.n.00002000").count("actor.n.00003000") == 1

    def test_part_relation(self, wordnet_dir):
        network = load_wordnet_nouns(wordnet_dir)
        assert network.neighbors(
            "star.n.00005000", [Relation.PART_MERONYM]
        ) == ["entity.n.00001000"]

    def test_sense_order_from_index(self, wordnet_dir):
        network = load_wordnet_nouns(wordnet_dir)
        senses = [c.id for c in network.senses("star")]
        # index.noun ranks the celestial sense first.
        assert senses == ["star.n.00005000", "star.n.00004000"]

    def test_loaded_network_disambiguates(self, wordnet_dir):
        from repro.core import XSDF, XSDFConfig

        network = load_wordnet_nouns(wordnet_dir)
        # Radius 2: the sibling <actor> is two edges away via <cast>,
        # whose label the mini extract deliberately does not know.
        xsdf = XSDF(network, XSDFConfig(
            sphere_radius=2, strip_target_dimension=True,
        ))
        result = xsdf.disambiguate_document(
            "<cast><actor>x</actor><star>y</star></cast>"
        )
        picks = {a.label: a.concept_id for a in result.assignments}
        # 'star' next to an actor resolves to the performer sense.
        assert picks["star"] == "star.n.00004000"


class TestSenseOrderAPI:
    def test_set_sense_order_validates(self, wordnet_dir):
        network = load_wordnet_nouns(wordnet_dir)
        with pytest.raises(ValueError):
            network.set_sense_order("star", ["star.n.00004000"])
        with pytest.raises(KeyError):
            network.set_sense_order("nosuch", [])
