"""Shared harness for the server battery: real sockets, raw HTTP bytes.

The tests speak HTTP by hand (request bytes in, response bytes out)
against a :class:`~repro.server.lifecycle.ReproServer` bound to an
ephemeral port inside the test's own event loop — no HTTP client
library sits between the assertions and the wire format, so the chunk
framing, status lines, and header casing are all pinned exactly as a
curl/load-balancer client would see them.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

import pytest

from repro.server import ReproServer, ServerApp, ServerConfig


@pytest.fixture()
def make_app(lexicon):
    """``make_app(config=..., **server_knobs) -> ServerApp`` on port 0."""

    def factory(config=None, **knobs):
        knobs.setdefault("port", 0)
        return ServerApp(
            lexicon, config=config, server_config=ServerConfig(**knobs)
        )

    return factory


@contextlib.asynccontextmanager
async def running(app: ServerApp):
    """Boot a :class:`ReproServer` around ``app``; drain on exit."""
    server = ReproServer(app)
    await server.start()
    try:
        yield server
    finally:
        # drain() is safe to repeat: tests that already drained (or only
        # began one) still get the scoring pool and listener released.
        await server.drain()


async def raw_request(address, payload: bytes) -> bytes:
    """Send raw bytes to the server, return the full raw response."""
    host, port = address
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(payload)
    await writer.drain()
    data = await reader.read()
    writer.close()
    with contextlib.suppress(OSError):
        await writer.wait_closed()
    return data


def get(path: str) -> bytes:
    """Raw bytes of a GET request."""
    return f"GET {path} HTTP/1.1\r\nHost: test\r\n\r\n".encode("ascii")


def post(path: str, body: bytes, content_type: str = "application/json",
         headers: tuple = ()) -> bytes:
    """Raw bytes of a POST request with a fixed-length body."""
    head = (
        f"POST {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    for name, value in headers:
        head += f"{name}: {value}\r\n"
    return head.encode("ascii") + b"\r\n" + body


def disambiguate(xml: str, name: str | None = None,
                 config: dict | None = None) -> bytes:
    """Raw bytes of a JSON-envelope disambiguation request."""
    payload: dict = {"xml": xml}
    if name is not None:
        payload["name"] = name
    if config is not None:
        payload["config"] = config
    return post("/v1/disambiguate", json.dumps(payload).encode("utf-8"))


class Response:
    """A parsed raw HTTP response: status, headers, de-chunked body.

    ``chunks`` holds the individual chunk payloads when the response
    used chunked transfer encoding (``None`` for fixed-length bodies),
    so tests can pin the chunk-per-NDJSON-line framing promise.
    """

    def __init__(self, raw: bytes):
        head, _, rest = raw.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        self.status = int(lines[0].split(b" ")[1])
        self.headers: dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.decode("latin-1").partition(":")
            self.headers[name.strip().lower()] = value.strip()
        self.chunks: list[bytes] | None = None
        if "chunked" in self.headers.get("transfer-encoding", ""):
            self.chunks = []
            while rest:
                size_text, _, rest = rest.partition(b"\r\n")
                size = int(size_text, 16)
                if size == 0:
                    break
                self.chunks.append(rest[:size])
                rest = rest[size + 2:]
            self.body = b"".join(self.chunks)
        else:
            self.body = rest

    def json(self) -> dict:
        """The body decoded as one JSON document."""
        return json.loads(self.body)

    def ndjson(self) -> list[dict]:
        """The body decoded as NDJSON, one document per line."""
        return [
            json.loads(line)
            for line in self.body.split(b"\n") if line
        ]


async def request(server: ReproServer, payload: bytes) -> Response:
    """One raw round-trip against a running server."""
    return Response(await raw_request(server.address, payload))
