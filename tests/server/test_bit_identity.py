"""Served records must be byte-identical to ``repro batch`` output.

This is the service's core contract: a daemon answer is always
reproducible by a batch run on the same input and configuration.  The
test runs the real CLI batch path over a small corpus, then serves the
same documents through a live server — cold caches first, then warm —
and compares the NDJSON record line against the batch JSONL line,
byte for byte.
"""

from __future__ import annotations

import asyncio
import io
import json

from repro.cli import main

from .conftest import disambiguate, request, running

SECOND_XML = """<?xml version="1.0"?>
<library>
  <book>
    <title>bank</title>
    <author>Stewart</author>
    <subject>mystery</subject>
  </book>
</library>
"""


def batch_lines(tmp_path, documents):
    """``{name: jsonl_line}`` from a real ``repro batch`` run."""
    for name, xml in documents:
        (tmp_path / name).write_text(xml, encoding="utf-8")
    out = io.StringIO()
    code = main(["batch", str(tmp_path / "*.xml")], out=out)
    assert code == 0
    lines = {}
    for line in out.getvalue().splitlines():
        lines[json.loads(line)["name"]] = line.encode("utf-8")
    return lines


def test_served_records_match_batch_cold_and_warm(
    make_app, tmp_path, figure1_xml
):
    documents = [("films.xml", figure1_xml), ("books.xml", SECOND_XML)]
    expected = batch_lines(tmp_path, documents)

    async def go():
        served: list[tuple[str, str, bytes]] = []
        async with running(make_app()) as server:
            for phase in ("cold", "warm"):
                for name, xml in documents:
                    response = await request(server, disambiguate(
                        xml, name=str(tmp_path / name)
                    ))
                    assert response.status == 200
                    served.append(
                        (phase, name, response.body.split(b"\n")[-3])
                    )
        return served

    for phase, name, record_line in asyncio.run(go()):
        assert record_line == expected[str(tmp_path / name)], (
            f"{name} diverged from the batch line under {phase} caches"
        )
