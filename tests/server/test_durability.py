"""Self-healing under a live server: scrub failover, hot reload, LRU.

The durability contract, end to end but in-process: a seeded bit flip
under a running server is detected by the scrubber, the damaged shard
is quarantined, serving fails over to a heap build with zero failed
requests, and ``/healthz`` flips to ``degraded``; a manifest change
hot-reloads atomically (and a *failed* reload changes nothing); and
the registry's attachment LRU stays sound while server sessions churn
concurrently across domains.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import pytest

from repro.runtime import PackedIndex
from repro.runtime.faults import FaultInjector, FaultSpec
from repro.runtime.store import write_shard
from repro.semnet.generator import GeneratorConfig, generate_network
from repro.semnet.io import save_network

from .conftest import get, post, request, running


def _registry_tree(tmp_path):
    """Two-domain manifest (alpha default), both domains sharded."""
    nets = {}
    for name, seed in (("alpha", 101), ("beta", 202)):
        net = generate_network(GeneratorConfig(
            n_concepts=120, seed=seed, gloss_style="local"
        ))
        save_network(net, str(tmp_path / f"{name}.network.json"))
        write_shard(
            PackedIndex(net),
            str(tmp_path / f"{name}.rxpd"),
            fingerprint=net.fingerprint(),
        )
        nets[name] = net
    manifest = tmp_path / "registry.toml"
    manifest.write_text(
        'default = "alpha"\n'
        '\n'
        '[networks.alpha]\n'
        'network = "alpha.network.json"\n'
        'shard = "alpha.rxpd"\n'
        '\n'
        '[networks.beta]\n'
        'network = "beta.network.json"\n'
        'shard = "beta.rxpd"\n'
    )
    return str(manifest), nets


def _doc_for(network, n_words=8):
    """An XML document speaking ``network``'s vocabulary."""
    words = sorted(network.words())[:n_words]
    body = "".join(f"<{w}>{w}</{w}>" for w in words)
    return f"<record>{body}</record>"


def _domain_request(xml: str, domain: str) -> bytes:
    """A JSON-envelope request routed to a registry domain."""
    return post("/v1/disambiguate", json.dumps(
        {"xml": xml, "name": f"{domain}.xml", "domain": domain}
    ).encode("utf-8"))


def run(coro):
    return asyncio.run(coro)


class TestHealthzDurability:
    def test_block_shape_without_registry_or_scrubber(self, make_app):
        async def go():
            async with running(make_app()) as server:
                return await request(server, get("/healthz"))

        payload = run(go()).json()
        assert payload["status"] == "ok"
        durability = payload["durability"]
        assert durability["degraded"] == {}
        assert durability["scrubber"] is None
        reload_block = durability["reload"]
        assert reload_block["generation"] == 0
        assert reload_block["count"] == 0
        assert reload_block["watching"] == []
        assert reload_block["last_error"] == ""


class TestScrubFailover:
    def test_bitrot_fails_over_with_zero_failed_requests(
        self, make_app, tmp_path
    ):
        manifest, nets = _registry_tree(tmp_path)
        shard = str(tmp_path / "alpha.rxpd")
        doc = _doc_for(nets["alpha"])
        app = make_app(
            registry=manifest,
            scrub_interval=0.01,
            scrub_slice_bytes=1 << 20,
            scrub_repair=False,
        )

        async def go():
            async with running(app) as server:
                before = await request(server, get("/healthz"))
                assert before.json()["index"]["backing"] == "mmap"
                offset = FaultInjector(
                    42, [FaultSpec.bitrot()]
                ).bitrot_shard(shard)
                assert offset is not None
                deadline = time.monotonic() + 20.0
                payload = None
                while time.monotonic() < deadline:
                    # Every request during the failover window must
                    # succeed: that IS the zero-failed-requests claim.
                    answer = await request(
                        server, _domain_request(doc, "alpha")
                    )
                    assert answer.status == 200
                    payload = (await request(server, get("/healthz"))).json()
                    # Degradation is marked before the heap rebuild
                    # installs (it queues behind in-flight scoring), so
                    # wait for the swap itself, not just the flag.
                    if (payload["status"] == "degraded"
                            and payload["index"]["backing"] == "heap"):
                        break
                    await asyncio.sleep(0.02)
                assert payload is not None
                assert payload["status"] == "degraded"
                assert payload["index"]["backing"] == "heap"
                assert payload["durability"]["degraded"]
                assert payload["durability"]["scrubber"]["quarantined"] >= 1
                # Serving continues on the fallback after the swap.
                after = await request(server, _domain_request(doc, "alpha"))
                assert after.status == 200

        run(go())
        # The evidence survived quarantine; the live path is gone.
        assert not os.path.exists(shard)
        assert os.path.exists(shard + ".quarantined")


class TestHotReload:
    def test_maybe_reload_fires_only_on_watched_changes(
        self, make_app, tmp_path
    ):
        manifest, nets = _registry_tree(tmp_path)
        doc = _doc_for(nets["alpha"])
        app = make_app(registry=manifest)

        async def go():
            async with running(app) as server:
                assert app.maybe_reload() is False  # nothing changed
                stat = os.stat(manifest)
                os.utime(manifest, ns=(
                    stat.st_atime_ns, stat.st_mtime_ns + 1_000_000
                ))
                assert app.maybe_reload() is True
                assert app.maybe_reload() is False  # snapshot re-seeded
                payload = (await request(server, get("/healthz"))).json()
                assert payload["durability"]["reload"]["count"] == 1
                assert payload["durability"]["reload"]["generation"] == 1
                assert manifest in payload["durability"]["reload"]["watching"]
                # The swapped state serves, mmap-backed as before.
                assert payload["index"]["backing"] == "mmap"
                answer = await request(server, _domain_request(doc, "alpha"))
                assert answer.status == 200

        run(go())

    def test_failed_reload_keeps_the_old_state_serving(
        self, make_app, tmp_path
    ):
        manifest, nets = _registry_tree(tmp_path)
        doc = _doc_for(nets["alpha"])
        app = make_app(registry=manifest)

        async def go():
            async with running(app) as server:
                with open(manifest, "w") as fh:
                    fh.write("default = \"nowhere\"\nnot toml [[[")
                assert app.reload() is False
                payload = (await request(server, get("/healthz"))).json()
                assert payload["durability"]["reload"]["last_error"]
                assert payload["durability"]["reload"]["count"] == 0
                # The old registry keeps serving both domains.
                answer = await request(server, _domain_request(doc, "alpha"))
                assert answer.status == 200

        run(go())


class TestRegistryLRUUnderSessions:
    def test_evicted_domain_reattaches_cleanly_under_churn(
        self, make_app, tmp_path
    ):
        # max_sessions=2 (default + one domain) forces session-LRU
        # eviction while max_attached=1 forces attachment-LRU eviction
        # underneath it: alpha's mmap is released while its session is
        # being churned out.  Re-requesting alpha must re-attach fresh
        # — same bytes as the cold answer, mmap-backed, no stale
        # fingerprint and no dangling mapping.
        manifest, nets = _registry_tree(tmp_path)
        alpha_doc = _doc_for(nets["alpha"])
        beta_doc = _doc_for(nets["beta"])
        app = make_app(registry=manifest, max_sessions=2)

        async def go():
            async with running(app) as server:
                cold = await request(server, _domain_request(
                    alpha_doc, "alpha"
                ))
                assert cold.status == 200
                app._registry.max_attached = 1
                for _ in range(3):
                    answers = await asyncio.gather(
                        request(server, _domain_request(alpha_doc, "alpha")),
                        request(server, _domain_request(beta_doc, "beta")),
                    )
                    assert [a.status for a in answers] == [200, 200]
                stats = app._registry.stats()
                assert stats["evictions"] >= 1
                again = await request(server, _domain_request(
                    alpha_doc, "alpha"
                ))
                assert again.status == 200
                assert again.body == cold.body
                attached = app._registry.attach("alpha")
                assert attached.index.backing == "mmap"
                assert attached.network.fingerprint() == \
                    nets["alpha"].fingerprint()

        run(go())
