"""Unit tests of the from-scratch HTTP/1.1 wire layer.

``read_request`` is fed a pre-loaded ``asyncio.StreamReader`` directly
— no socket needed — so every malformed-input branch and limit is
exercised byte-for-byte.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.server.protocol import (
    ChunkedNDJSONWriter,
    ProtocolError,
    read_request,
    render_headers,
    write_json_response,
)


def parse(data: bytes, **kwargs):
    async def go():
        # StreamReader must be built inside the running loop.
        reader = asyncio.StreamReader()
        if data:
            reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class SinkWriter:
    """A StreamWriter stand-in that just buffers what it is given."""

    def __init__(self):
        self.data = bytearray()

    def write(self, data: bytes) -> None:
        self.data.extend(data)

    async def drain(self) -> None:
        pass


class TestReadRequest:
    def test_parses_method_path_headers_and_body(self):
        request = parse(
            b"POST /v1/disambiguate HTTP/1.1\r\n"
            b"Host: example\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 4\r\n"
            b"\r\n"
            b"body",
            client="10.0.0.9",
        )
        assert request.method == "POST"
        assert request.path == "/v1/disambiguate"
        assert request.version == "HTTP/1.1"
        assert request.body == b"body"
        assert request.client == "10.0.0.9"
        # Headers are case-insensitive: stored lowercase, read any-case.
        assert request.headers["content-type"] == "application/json"
        assert request.header("CONTENT-TYPE") == "application/json"

    def test_query_string_is_stripped_from_the_path(self):
        request = parse(b"GET /healthz?verbose=1 HTTP/1.1\r\n\r\n")
        assert request.path == "/healthz"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_malformed_request_line_is_400(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_unsupported_protocol_version_is_400(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"GET /healthz SPDY/3\r\n\r\n")
        assert err.value.status == 400

    def test_header_without_colon_is_400(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"GET / HTTP/1.1\r\nnocolonhere\r\n\r\n")
        assert err.value.status == 400

    def test_truncated_headers_are_400(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"GET / HTTP/1.1\r\nHost: x\r\n")
        assert err.value.status == 400

    def test_header_budget_is_431(self):
        with pytest.raises(ProtocolError) as err:
            parse(
                b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * 64 + b"\r\n\r\n",
                max_header_bytes=32,
            )
        assert err.value.status == 431

    def test_oversized_body_is_413_before_buffering(self):
        # The declared length alone triggers the refusal — the body
        # bytes are never read (here they do not even exist).
        with pytest.raises(ProtocolError) as err:
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
                max_body_bytes=128,
            )
        assert err.value.status == 413

    def test_chunked_request_body_is_501(self):
        with pytest.raises(ProtocolError) as err:
            parse(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert err.value.status == 501

    def test_bad_content_length_is_400(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n")
        assert err.value.status == 400
        with pytest.raises(ProtocolError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\n")
        assert err.value.status == 400

    def test_truncated_body_is_400(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
        assert err.value.status == 400


class TestResponses:
    def test_render_headers_shape(self):
        data = render_headers(200, [("Content-Type", "application/json")])
        assert data.startswith(b"HTTP/1.1 200 OK\r\n")
        assert data.endswith(b"\r\n\r\n")

    def test_json_response_is_sorted_and_newline_terminated(self):
        writer = SinkWriter()
        asyncio.run(write_json_response(writer, 200, {"b": 1, "a": 2}))
        head, _, body = bytes(writer.data).partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Length: " + str(len(body)).encode() in head
        assert body.endswith(b"\n")
        assert json.loads(body) == {"a": 2, "b": 1}
        # Canonical key order survives serialization.
        assert body.index(b'"a"') < body.index(b'"b"')


class TestChunkedNDJSON:
    def run_stream(self, status, lines):
        writer = SinkWriter()

        async def go():
            stream = ChunkedNDJSONWriter(writer)
            await stream.start(status)
            for line in lines:
                await stream.write_line(line)
            await stream.finish()

        asyncio.run(go())
        return bytes(writer.data)

    def test_one_chunk_per_line(self):
        data = self.run_stream(200, [{"seq": 0}, {"seq": 1}])
        head, _, rest = data.partition(b"\r\n\r\n")
        assert b"Transfer-Encoding: chunked" in head
        chunks = []
        while rest:
            size_text, _, rest = rest.partition(b"\r\n")
            size = int(size_text, 16)
            if size == 0:
                break
            chunks.append(rest[:size])
            rest = rest[size + 2:]
        # Exactly one complete, newline-terminated JSON document per
        # chunk — the incremental-client promise.
        assert [json.loads(c) for c in chunks] == [{"seq": 0}, {"seq": 1}]
        assert all(c.endswith(b"\n") for c in chunks)
        assert data.endswith(b"0\r\n\r\n")

    def test_status_is_frozen_after_start(self):
        writer = SinkWriter()

        async def go():
            stream = ChunkedNDJSONWriter(writer)
            await stream.start(422)
            await stream.start(200)  # idempotent: the 422 already left

        asyncio.run(go())
        assert bytes(writer.data).startswith(b"HTTP/1.1 422 ")
