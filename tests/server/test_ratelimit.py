"""Token-bucket rate limiter tests, driven by an injected fake clock."""

from __future__ import annotations

import pytest

from repro.server.ratelimit import RateLimiter, TokenBucket


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refusal_with_wait(self):
        bucket = TokenBucket(rate=1.0, burst=2, now=0.0)
        assert bucket.acquire(0.0) == 0.0
        assert bucket.acquire(0.0) == 0.0
        wait = bucket.acquire(0.0)
        assert wait == pytest.approx(1.0)

    def test_tokens_refill_with_time(self):
        bucket = TokenBucket(rate=2.0, burst=1, now=0.0)
        assert bucket.acquire(0.0) == 0.0
        assert bucket.acquire(0.0) > 0.0
        # 2 tokens/s: after half a second one full token has accrued.
        assert bucket.acquire(0.5) == 0.0

    def test_refill_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2, now=0.0)
        bucket.acquire(0.0)
        bucket.acquire(0.0)
        # A long idle stretch accrues back to burst capacity, not more.
        assert bucket.acquire(60.0) == 0.0
        assert bucket.acquire(60.0) == 0.0
        assert bucket.acquire(60.0) > 0.0


class TestRateLimiter:
    def test_disabled_when_rate_is_zero(self):
        limiter = RateLimiter(0.0, burst=1)
        for _ in range(50):
            assert limiter.admit("10.0.0.1") == 0.0
        assert limiter.stats()["enabled"] is False
        assert limiter.stats()["admitted"] == 50

    def test_throttles_per_client(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=1, clock=clock)
        assert limiter.admit("a") == 0.0
        assert limiter.admit("a") > 0.0
        # A different client owns a fresh bucket.
        assert limiter.admit("b") == 0.0
        clock.advance(1.0)
        assert limiter.admit("a") == 0.0

    def test_wait_has_a_floor(self):
        clock = FakeClock()
        limiter = RateLimiter(1e6, burst=1, clock=clock)
        limiter.admit("a")
        # Even at absurd refill rates a throttled client is told to
        # wait a nonzero amount.
        assert limiter.admit("a") >= 1e-3

    def test_client_map_is_lru_bounded(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=1, clock=clock)
        limiter.max_clients = 4
        for i in range(10):
            limiter.admit(f"client-{i}")
        assert limiter.stats()["clients"] == 4
        # The oldest client was evicted: it gets a fresh burst even
        # though its old bucket was empty.
        assert limiter.admit("client-0") == 0.0

    def test_stats_count_rejections(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=1, clock=clock)
        limiter.admit("a")
        limiter.admit("a")
        stats = limiter.stats()
        assert stats["admitted"] == 1
        assert stats["rejected"] == 1

    def test_burst_is_validated(self):
        with pytest.raises(ValueError):
            RateLimiter(1.0, burst=0)
