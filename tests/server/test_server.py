"""End-to-end server battery over real sockets.

Every test boots a :class:`ReproServer` on an ephemeral port inside its
own event loop and talks raw HTTP to it — operational endpoints,
NDJSON streaming, admission control, and the graceful-drain contract.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core.config import XSDFConfig
from repro.server import ServerConfig

from .conftest import disambiguate, get, post, request, running

BOOKS_XML = """<?xml version="1.0"?>
<library>
  <book>
    <title>bank</title>
    <author>Stewart</author>
  </book>
</library>
"""


def run(coro):
    return asyncio.run(coro)


class TestServerConfig:
    @pytest.mark.parametrize("knobs", [
        {"max_concurrency": 0},
        {"rate_limit": -1.0},
        {"burst": 0},
        {"max_body_bytes": 0},
        {"request_timeout": 0.0},
        {"drain_timeout": -1.0},
        {"max_sessions": 0},
    ])
    def test_invalid_knobs_raise_value_error(self, knobs):
        with pytest.raises(ValueError):
            ServerConfig(**knobs)


class TestOperationalEndpoints:
    def test_healthz_reports_ready_index_and_uptime(self, make_app, lexicon):
        async def go():
            async with running(make_app()) as server:
                return await request(server, get("/healthz"))

        response = run(go())
        assert response.status == 200
        payload = response.json()
        assert payload["status"] == "ok"
        assert payload["ready"] is True
        assert payload["uptime_s"] >= 0
        assert payload["index"]["fingerprint"] == lexicon.fingerprint()
        assert payload["index"]["kind"] == "packed"
        assert payload["sessions"] == 1
        assert payload["inflight"] == 0

    def test_metrics_snapshot_matches_the_cli_schema(self, make_app):
        async def go():
            async with running(make_app()) as server:
                return await request(server, get("/metrics"))

        response = run(go())
        assert response.status == 200
        snapshot = response.json()
        # Same shape as `repro batch --metrics-json`: one consumer-side
        # parser serves both artifacts.
        for key in ("counters", "stages", "caches", "events",
                    "throughput", "elapsed_s"):
            assert key in snapshot
        assert "server_warmup" in snapshot["stages"]
        assert "sphere_memo" in snapshot["caches"]

    def test_unknown_path_is_a_404_envelope(self, make_app):
        async def go():
            async with running(make_app()) as server:
                return await request(server, get("/nope"))

        response = run(go())
        assert response.status == 404
        envelope = response.json()["envelope"]
        assert envelope["status"] == "failed"
        assert envelope["stage"] == "routing"

    def test_wrong_method_is_405_with_allow(self, make_app):
        async def go():
            async with running(make_app()) as server:
                return (
                    await request(server, post("/healthz", b"{}")),
                    await request(server, get("/v1/disambiguate")),
                )

        health, disambig = run(go())
        assert health.status == 405
        assert health.headers["allow"] == "GET"
        assert disambig.status == 405
        assert disambig.headers["allow"] == "POST"


class TestDisambiguate:
    def test_ndjson_round_trip(self, make_app, figure1_xml):
        async def go():
            async with running(make_app()) as server:
                return await request(
                    server, disambiguate(figure1_xml, name="films")
                )

        response = run(go())
        assert response.status == 200
        assert response.headers["content-type"] == "application/x-ndjson"
        lines = response.ndjson()
        annotations, record, envelope = lines[:-2], lines[-2], lines[-1]
        assert annotations, "expected at least one annotation line"
        for seq, line in enumerate(annotations):
            assert line["doc"] == "films"
            assert line["seq"] == seq
            assert "chosen" in line["annotation"]
        assert record["name"] == "films"
        assert record["ok"] is True
        assert [a["annotation"] for a in annotations] == \
            record["result"]["assignments"]
        assert envelope["envelope"]["status"] == "ok"

    def test_chunk_per_line_framing(self, make_app, figure1_xml):
        async def go():
            async with running(make_app()) as server:
                return await request(server, disambiguate(figure1_xml))

        response = run(go())
        assert response.chunks is not None
        # One complete, newline-terminated JSON document per chunk: a
        # client can act on each annotation before the stream ends.
        for chunk in response.chunks:
            assert chunk.endswith(b"\n")
            json.loads(chunk)
        assert len(response.chunks) == len(response.ndjson())

    def test_raw_xml_body_with_name_header(self, make_app):
        async def go():
            async with running(make_app()) as server:
                return await request(server, post(
                    "/v1/disambiguate", BOOKS_XML.encode("utf-8"),
                    content_type="application/xml",
                    headers=(("X-Repro-Name", "books"),),
                ))

        response = run(go())
        assert response.status == 200
        record = response.ndjson()[-2]
        assert record["name"] == "books"
        assert record["ok"] is True

    def test_malformed_xml_is_a_422_failed_stream(self, make_app):
        async def go():
            async with running(make_app()) as server:
                return await request(
                    server, disambiguate("<open><unclosed>", name="broken")
                )

        response = run(go())
        assert response.status == 422
        lines = response.ndjson()
        record, envelope = lines[-2], lines[-1]
        assert record["ok"] is False
        assert envelope["envelope"]["status"] == "failed"
        assert envelope["envelope"]["error_type"]

    def test_malformed_json_envelope_is_400(self, make_app):
        async def go():
            async with running(make_app()) as server:
                return await request(server, post(
                    "/v1/disambiguate", b"{nope", "application/json"
                ))

        response = run(go())
        assert response.status == 400
        envelope = response.json()["envelope"]
        assert envelope["stage"] == "envelope"

    def test_unknown_override_key_is_400(self, make_app, figure1_xml):
        async def go():
            async with running(make_app()) as server:
                return await request(server, disambiguate(
                    figure1_xml, config={"raduis": 1}
                ))

        response = run(go())
        assert response.status == 400
        assert "raduis" in response.json()["envelope"]["error"]

    def test_invalid_override_value_is_400(self, make_app, figure1_xml):
        async def go():
            async with running(make_app()) as server:
                return (
                    await request(server, disambiguate(
                        figure1_xml, config={"radius": "big"}
                    )),
                    await request(server, disambiguate(
                        figure1_xml, config={"radius": 0}
                    )),
                )

        bad_type, bad_value = run(go())
        assert bad_type.status == 400
        assert bad_value.status == 400

    def test_config_override_answers_and_opens_a_session(
        self, make_app, figure1_xml
    ):
        async def go():
            async with running(make_app()) as server:
                default = await request(server, disambiguate(figure1_xml))
                concept = await request(server, disambiguate(
                    figure1_xml, config={"approach": "concept", "radius": 1}
                ))
                health = await request(server, get("/healthz"))
                return default, concept, health

        default, concept, health = run(go())
        assert default.status == 200
        assert concept.status == 200
        # The override ran in its own session, alongside the default.
        assert health.json()["sessions"] == 2

    def test_oversized_body_is_413(self, make_app, figure1_xml):
        async def go():
            app = make_app(max_body_bytes=64)
            async with running(app) as server:
                return await request(server, disambiguate(figure1_xml))

        response = run(go())
        assert response.status == 413
        assert response.json()["envelope"]["stage"] == "protocol"

    def test_rate_limit_is_429_with_retry_after(self, make_app, figure1_xml):
        async def go():
            app = make_app(rate_limit=0.001, burst=1)
            async with running(app) as server:
                first = await request(server, disambiguate(figure1_xml))
                second = await request(server, disambiguate(figure1_xml))
                return first, second

        first, second = run(go())
        assert first.status == 200
        assert second.status == 429
        assert int(second.headers["retry-after"]) >= 1
        assert second.json()["envelope"]["stage"] == "admission"

    def test_request_timeout_is_a_504_envelope(self, make_app, figure1_xml):
        async def go():
            app = make_app(request_timeout=1e-6)
            async with running(app) as server:
                return await request(server, disambiguate(figure1_xml))

        response = run(go())
        assert response.status == 504
        envelope = response.ndjson()[-1]["envelope"]
        assert envelope["stage"] == "timeout"
        assert envelope["error_type"] == "TimeoutError"

    def test_concurrent_clients_get_identical_records(
        self, make_app, figure1_xml
    ):
        async def go():
            app = make_app(max_concurrency=8)
            async with running(app) as server:
                payload = disambiguate(figure1_xml, name="films")
                return await asyncio.gather(
                    *(request(server, payload) for _ in range(6))
                )

        responses = run(go())
        lines = [r.body.split(b"\n")[-3] for r in responses]
        assert all(r.status == 200 for r in responses)
        # Deterministic under concurrency: every client sees the same
        # record bytes.
        assert len(set(lines)) == 1

    def test_warm_caches_serve_the_second_request(self, make_app, figure1_xml):
        async def go():
            async with running(make_app()) as server:
                first = await request(
                    server, disambiguate(figure1_xml, name="films")
                )
                second = await request(
                    server, disambiguate(figure1_xml, name="films")
                )
                metrics = await request(server, get("/metrics"))
                return first, second, metrics

        first, second, metrics = run(go())
        snapshot = metrics.json()
        # The record line is identical either way...
        assert first.body.split(b"\n")[-3] == second.body.split(b"\n")[-3]
        # ...but the second request was served from the warm document
        # cache, and the index was built exactly once, at warm-up.
        assert snapshot["caches"]["documents"]["hits"] >= 1
        assert snapshot["stages"]["server_warmup"]["count"] == 1
        assert snapshot["counters"]["documents_served"] == 2


class TestDrain:
    def test_drain_finishes_inflight_and_refuses_new_connections(
        self, make_app, figure1_xml
    ):
        async def go():
            app = make_app()
            async with running(app) as server:
                host, port = server.address
                body = json.dumps(
                    {"xml": figure1_xml, "name": "inflight"}
                ).encode("utf-8")
                head = (
                    f"POST /v1/disambiguate HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode("ascii")
                reader, writer = await asyncio.open_connection(host, port)
                # Half a body: the request is provably in flight.
                writer.write(head + body[:16])
                await writer.drain()
                await asyncio.sleep(0.05)

                server.request_drain()
                drain_task = asyncio.create_task(server.run_until_drained())

                refused = False
                for _ in range(200):
                    await asyncio.sleep(0.01)
                    try:
                        _, probe = await asyncio.open_connection(host, port)
                    except OSError:
                        refused = True
                        break
                    probe.close()
                assert refused, "listener kept accepting during drain"

                # The in-flight request still completes, whole.
                writer.write(body[16:])
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await drain_task
                return raw, app

        raw, app = run(go())
        assert raw.split(b"\r\n")[0] == b"HTTP/1.1 200 OK"
        assert b'"status": "ok"' in raw
        assert app.metrics.counter("server_drains") >= 1
        assert app.metrics.counter("drain_cancelled") == 0

    def test_draining_app_refuses_new_work_with_503(
        self, make_app, figure1_xml
    ):
        async def go():
            app = make_app()
            async with running(app) as server:
                app.begin_drain()
                health = await request(server, get("/healthz"))
                work = await request(server, disambiguate(figure1_xml))
                return health, work

        health, work = run(go())
        assert health.status == 503
        assert health.json()["status"] == "draining"
        assert work.status == 503
        assert work.json()["envelope"]["stage"] == "admission"

    def test_sigterm_drains_the_daemon_and_exits_zero(self):
        src = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            announce = proc.stderr.readline()
            assert "repro-serve listening on" in announce
            host, port = announce.strip().rsplit(" ", 1)[1].rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=30) as s:
                s.sendall(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                data = b""
                while chunk := s.recv(4096):
                    data += chunk
            assert data.split(b"\r\n")[0] == b"HTTP/1.1 200 OK"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


class TestOverridesMatchBatchSemantics:
    def test_override_equals_reconfigured_default(self, make_app, figure1_xml):
        """A per-request override answers exactly like a server whose
        *default* config is that override — same knob, same bytes."""

        async def served_record(app, payload):
            async with running(app) as server:
                response = await request(server, payload)
                return response.body.split(b"\n")[-3]

        overridden = run(served_record(
            make_app(),
            disambiguate(figure1_xml, name="films", config={"radius": 1}),
        ))
        reconfigured = run(served_record(
            make_app(config=XSDFConfig(sphere_radius=1)),
            disambiguate(figure1_xml, name="films"),
        ))
        assert overridden == reconfigured
