"""Unit tests for edge-based similarity measures."""

from __future__ import annotations

import pytest

from repro.semnet.builders import NetworkBuilder
from repro.similarity.edge import (
    LeacockChodorowSimilarity,
    PathSimilarity,
    WuPalmerSimilarity,
)


@pytest.fixture()
def taxonomy():
    """entity -> {person -> {actor -> star, director}, object -> rock}."""
    b = NetworkBuilder()
    b.synset("entity", ["entity"], "g")
    b.synset("person", ["person"], "g", hypernym="entity")
    b.synset("actor", ["actor"], "g", hypernym="person")
    b.synset("star", ["star"], "g", hypernym="actor")
    b.synset("director", ["director"], "g", hypernym="person")
    b.synset("object", ["object"], "g", hypernym="entity")
    b.synset("rock", ["rock"], "g", hypernym="object")
    return b.build()


class TestWuPalmer:
    def test_identity(self, taxonomy):
        assert WuPalmerSimilarity(taxonomy)("actor", "actor") == 1.0

    def test_formula_on_known_pair(self, taxonomy):
        # LCS(star, director) = person (depth 1); depths through LCS:
        # star = 3, director = 2 -> 2*1 / (3+2) = 0.4.
        wup = WuPalmerSimilarity(taxonomy)
        assert wup("star", "director") == pytest.approx(0.4)

    def test_parent_child_high(self, taxonomy):
        wup = WuPalmerSimilarity(taxonomy)
        assert wup("actor", "star") > wup("actor", "rock")

    def test_symmetry(self, taxonomy):
        wup = WuPalmerSimilarity(taxonomy)
        assert wup("star", "rock") == wup("rock", "star")

    def test_root_lcs_gives_zero(self, taxonomy):
        # LCS = entity at depth 0 -> similarity 0.
        assert WuPalmerSimilarity(taxonomy)("star", "rock") == 0.0

    def test_bounds(self, taxonomy):
        wup = WuPalmerSimilarity(taxonomy)
        ids = [c.id for c in taxonomy]
        assert all(0.0 <= wup(a, b) <= 1.0 for a in ids for b in ids)


class TestPathSimilarity:
    def test_identity(self, taxonomy):
        assert PathSimilarity(taxonomy)("star", "star") == 1.0

    def test_inverse_distance(self, taxonomy):
        path = PathSimilarity(taxonomy)
        assert path("actor", "person") == pytest.approx(1 / 2)
        assert path("star", "director") == pytest.approx(1 / 4)

    def test_disconnected_zero(self):
        b = NetworkBuilder()
        b.synset("a", ["a"], "g")
        b.synset("b", ["b"], "g")
        assert PathSimilarity(b.build())("a", "b") == 0.0


class TestLeacockChodorow:
    def test_identity(self, taxonomy):
        assert LeacockChodorowSimilarity(taxonomy)("star", "star") == 1.0

    def test_monotone_in_distance(self, taxonomy):
        lc = LeacockChodorowSimilarity(taxonomy)
        assert lc("actor", "person") > lc("actor", "director") > \
            lc("star", "rock")

    def test_bounds(self, taxonomy):
        lc = LeacockChodorowSimilarity(taxonomy)
        ids = [c.id for c in taxonomy]
        assert all(0.0 <= lc(a, b) <= 1.0 for a in ids for b in ids)
