"""Unit tests for gloss-based, node-based, and combined similarity."""

from __future__ import annotations

import pytest

from repro.semnet.builders import NetworkBuilder
from repro.semnet.ic import InformationContent
from repro.similarity.combined import CombinedSimilarity, SimilarityWeights
from repro.similarity.gloss import ExtendedLeskSimilarity, _ngram_overlap_score
from repro.similarity.node import (
    JiangConrathSimilarity,
    LinSimilarity,
    ResnikSimilarity,
)


@pytest.fixture()
def network():
    b = NetworkBuilder()
    b.synset("entity", ["entity"], "something that exists", freq=1)
    b.synset("person", ["person"], "a human being", hypernym="entity",
             freq=30)
    b.synset("actor", ["actor"], "a performer who acts in films",
             hypernym="person", freq=10)
    b.synset("star", ["star", "lead"],
             "an actor who plays the principal role in films",
             hypernym="actor", freq=5)
    b.synset("rock", ["rock"], "a hard stone from the ground",
             hypernym="entity", freq=20)
    return b.build()


class TestNgramOverlap:
    def test_empty_inputs(self):
        assert _ngram_overlap_score([], ["a"]) == 0.0

    def test_single_shared_word(self):
        assert _ngram_overlap_score(["a", "x"], ["y", "a"]) == 1.0

    def test_phrase_counts_quadratically(self):
        score = _ngram_overlap_score(["a", "b", "c"], ["a", "b", "c"])
        assert score == 9.0  # one 3-gram = 3^2

    def test_two_separate_matches(self):
        score = _ngram_overlap_score(
            ["a", "b", "x", "c"], ["a", "b", "y", "c"]
        )
        assert score == 4.0 + 1.0  # "a b" (2^2) + "c" (1)

    def test_no_overlap(self):
        assert _ngram_overlap_score(["a"], ["b"]) == 0.0


class TestExtendedLesk:
    def test_identity(self, network):
        assert ExtendedLeskSimilarity(network)("star", "star") == 1.0

    def test_related_glosses_overlap(self, network):
        lesk = ExtendedLeskSimilarity(network)
        assert lesk("star", "actor") > lesk("star", "rock")

    def test_bounds(self, network):
        lesk = ExtendedLeskSimilarity(network)
        ids = [c.id for c in network]
        assert all(0.0 <= lesk(a, b) <= 1.0 for a in ids for b in ids)

    def test_expansion_adds_signal(self, network):
        expanded = ExtendedLeskSimilarity(network, expand=True)
        plain = ExtendedLeskSimilarity(network, expand=False)
        # star's hypernym gloss mentions "films", overlapping actor's.
        assert expanded("star", "person") >= plain("star", "person")


class TestNodeMeasures:
    def test_lin_bounds_and_order(self, network):
        lin = LinSimilarity(network)
        assert lin("star", "actor") > lin("star", "rock")
        assert 0.0 <= lin("star", "rock") <= 1.0

    def test_resnik_normalized(self, network):
        resnik = ResnikSimilarity(network)
        assert 0.0 <= resnik("star", "actor") <= 1.0
        assert resnik("star", "star") > 0.0

    def test_jcn_identity_and_order(self, network):
        jcn = JiangConrathSimilarity(network)
        assert jcn("star", "star") == 1.0
        assert jcn("star", "actor") > jcn("star", "rock")

    def test_shared_ic_instance(self, network):
        ic = InformationContent(network)
        lin = LinSimilarity(network, ic=ic)
        assert lin("star", "actor") == pytest.approx(ic.lin("star", "actor"))


class TestSimilarityWeights:
    def test_normalization(self):
        weights = SimilarityWeights(2, 1, 1)
        assert weights.edge == pytest.approx(0.5)
        assert weights.edge + weights.node + weights.gloss == pytest.approx(1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimilarityWeights(-1, 1, 1)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            SimilarityWeights(0, 0, 0)


class TestCombinedSimilarity:
    def test_identity(self, network):
        assert CombinedSimilarity(network)("star", "star") == 1.0

    def test_bounds(self, network):
        sim = CombinedSimilarity(network)
        ids = [c.id for c in network]
        assert all(0.0 <= sim(a, b) <= 1.0 for a in ids for b in ids)

    def test_symmetric_via_cache(self, network):
        sim = CombinedSimilarity(network)
        forward = sim("star", "rock")
        assert sim("rock", "star") == forward
        assert sim.cache_size() == 1

    def test_single_component_weights(self, network):
        from repro.similarity.edge import WuPalmerSimilarity

        edge_only = CombinedSimilarity(
            network, weights=SimilarityWeights(1, 0, 0)
        )
        wup = WuPalmerSimilarity(network)
        assert edge_only("star", "actor") == pytest.approx(
            wup("star", "actor")
        )

    def test_combination_between_components(self, network):
        sim = CombinedSimilarity(network)
        components = []
        from repro.similarity.edge import WuPalmerSimilarity
        from repro.similarity.gloss import ExtendedLeskSimilarity
        components.append(WuPalmerSimilarity(network)("star", "actor"))
        components.append(LinSimilarity(network)("star", "actor"))
        components.append(ExtendedLeskSimilarity(network)("star", "actor"))
        assert min(components) <= sim("star", "actor") <= max(components)
