"""Property-based ``index=`` fast-path parity on random networks.

The curated-lexicon parity tests (``tests/runtime/test_index.py``) pin
bit-identical indexed scores on one fixed network; these properties
assert the same contract on *hypothesis-chosen* synthetic taxonomies —
shape, polysemy, and seed all vary — for every similarity measure in
the five ``repro.similarity`` modules.  ``edge``, ``node``, ``gloss``
and ``combined`` expose the ``index=`` fast path directly;
``vector`` has none (its inputs are plain mappings), which a signature
test pins so a future fast path cannot dodge this battery.

Each measure is exercised in **both** accelerated modes: the dict-keyed
:class:`SemanticIndex` and the interned flat-array
:class:`~repro.runtime.pack.PackedIndex` — three-way bit-identity
(network walk == dict index == packed kernels) on every sampled pair.
"""

from __future__ import annotations

import inspect
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import PackedIndex, SemanticIndex
from repro.semnet.generator import GeneratorConfig, generate_network
from repro.semnet.ic import InformationContent
from repro.similarity.combined import CombinedSimilarity, SimilarityWeights
from repro.similarity.edge import (
    LeacockChodorowSimilarity,
    PathSimilarity,
    WuPalmerSimilarity,
)
from repro.similarity.gloss import ExtendedLeskSimilarity
from repro.similarity.node import (
    JiangConrathSimilarity,
    LinSimilarity,
    ResnikSimilarity,
)
from repro.similarity.vector import VECTOR_MEASURES

#: (network, index, packed, ic) per generator shape — hypothesis
#: revisits shapes across examples, and network construction dominates
#: runtime.
_NETWORK_CACHE: dict[tuple, tuple] = {}

network_shapes = st.tuples(
    st.integers(min_value=0, max_value=999),     # generator seed
    st.sampled_from([30, 80, 140]),              # concepts
    st.sampled_from([2, 4, 7]),                  # branching
    st.sampled_from([1.5, 3.0]),                 # mean polysemy
)


def _network_index_ic(shape):
    if shape not in _NETWORK_CACHE:
        if len(_NETWORK_CACHE) > 48:
            _NETWORK_CACHE.clear()
        seed, n_concepts, branching, polysemy = shape
        network = generate_network(GeneratorConfig(
            n_concepts=n_concepts,
            branching=branching,
            mean_polysemy=polysemy,
            seed=seed,
        ))
        index = SemanticIndex(network)
        _NETWORK_CACHE[shape] = (
            network,
            index,
            PackedIndex.from_semantic_index(index),
            InformationContent(network),
        )
    return _NETWORK_CACHE[shape]


def _sample_pairs(network, seed, n_random=25):
    """Random concept pairs plus the senses-of-one-word pairs WSD uses."""
    rng = random.Random(seed)
    ids = [concept.id for concept in network]
    pairs = [(rng.choice(ids), rng.choice(ids)) for _ in range(n_random)]
    for word in sorted(network.words())[:10]:
        senses = [s.id for s in network.senses(word)]
        pairs.extend((a, b) for a in senses[:3] for b in senses[:3])
    return pairs


def _measure_triples(network, index, packed, ic, weights=None):
    """(slow, dict-fast, packed-fast) per index-accepting measure."""
    return [
        (WuPalmerSimilarity(network),
         WuPalmerSimilarity(network, index=index),
         WuPalmerSimilarity(network, index=packed)),
        (PathSimilarity(network),
         PathSimilarity(network, index=index),
         PathSimilarity(network, index=packed)),
        (LeacockChodorowSimilarity(network),
         LeacockChodorowSimilarity(network, index=index),
         LeacockChodorowSimilarity(network, index=packed)),
        (LinSimilarity(network, ic=ic),
         LinSimilarity(network, ic=ic, index=index),
         LinSimilarity(network, ic=ic, index=packed)),
        (ResnikSimilarity(network, ic=ic),
         ResnikSimilarity(network, ic=ic, index=index),
         ResnikSimilarity(network, ic=ic, index=packed)),
        (JiangConrathSimilarity(network, ic=ic),
         JiangConrathSimilarity(network, ic=ic, index=index),
         JiangConrathSimilarity(network, ic=ic, index=packed)),
        (ExtendedLeskSimilarity(network),
         ExtendedLeskSimilarity(network, index=index),
         ExtendedLeskSimilarity(network, index=packed)),
        (CombinedSimilarity(network, ic=ic, weights=weights),
         CombinedSimilarity(network, ic=ic, weights=weights, index=index),
         CombinedSimilarity(network, ic=ic, weights=weights, index=packed)),
    ]


class TestIndexParityProperty:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(shape=network_shapes, pair_seed=st.integers(0, 2**16))
    def test_every_measure_is_bit_identical(self, shape, pair_seed):
        """Indexed and packed scores must ``==`` unindexed ones."""
        network, index, packed, ic = _network_index_ic(shape)
        pairs = _sample_pairs(network, pair_seed)
        for slow, fast, fast_packed in _measure_triples(
            network, index, packed, ic
        ):
            for a, b in pairs:
                expected = slow(a, b)
                assert expected == fast(a, b), (
                    f"{type(slow).__name__} (dict index) diverges on "
                    f"({a}, {b}) for network shape {shape}"
                )
                assert expected == fast_packed(a, b), (
                    f"{type(slow).__name__} (packed index) diverges on "
                    f"({a}, {b}) for network shape {shape}"
                )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        shape=network_shapes,
        pair_seed=st.integers(0, 2**16),
        mix=st.tuples(
            st.floats(0.0, 1.0), st.floats(0.0, 1.0), st.floats(0.0, 1.0)
        ).filter(lambda m: sum(m) > 0),
    )
    def test_combined_parity_under_any_weight_mix(
        self, shape, pair_seed, mix
    ):
        """The Definition 9 combination keeps parity for any weights."""
        network, index, packed, ic = _network_index_ic(shape)
        weights = SimilarityWeights(*mix)
        slow = CombinedSimilarity(network, ic=ic, weights=weights)
        fast = CombinedSimilarity(
            network, ic=ic, weights=weights, index=index
        )
        fast_packed = CombinedSimilarity(
            network, ic=ic, weights=weights, index=packed
        )
        for a, b in _sample_pairs(network, pair_seed, n_random=12):
            expected = slow(a, b)
            assert expected == fast(a, b)
            assert expected == fast_packed(a, b)

    def test_vector_module_has_no_index_fast_path(self):
        """``repro.similarity.vector`` takes no ``index=`` — if one is
        ever added, this pin forces it into the parity battery above."""
        for name, measure in VECTOR_MEASURES.items():
            parameters = inspect.signature(measure).parameters
            assert "index" not in parameters, (
                f"vector measure {name!r} grew an index= parameter; "
                "add it to the index-parity property tests"
            )
