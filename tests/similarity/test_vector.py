"""Unit and property-based tests for sparse vector similarity."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.similarity.vector import (
    VECTOR_MEASURES,
    cosine_similarity,
    jaccard_similarity,
    pearson_similarity,
)

vectors = st.dictionaries(
    st.sampled_from("abcdefgh"),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    max_size=6,
)


class TestCosine:
    def test_identical_vectors(self):
        v = {"a": 1.0, "b": 2.0}
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_scale_invariance(self):
        u = {"a": 1.0, "b": 3.0}
        v = {"a": 10.0, "b": 30.0}
        assert cosine_similarity(u, v) == pytest.approx(1.0)

    def test_empty_vector(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0

    def test_known_value(self):
        # cos between (1,1) and (1,0) = 1/sqrt(2).
        u = {"a": 1.0, "b": 1.0}
        v = {"a": 1.0}
        assert cosine_similarity(u, v) == pytest.approx(0.7071, abs=1e-3)


class TestJaccard:
    def test_identical(self):
        v = {"a": 2.0, "b": 1.0}
        assert jaccard_similarity(v, v) == pytest.approx(1.0)

    def test_disjoint(self):
        assert jaccard_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_known_value(self):
        u = {"a": 2.0, "b": 2.0}
        v = {"a": 1.0, "b": 3.0}
        # min sum = 1+2 = 3; max sum = 2+3 = 5.
        assert jaccard_similarity(u, v) == pytest.approx(0.6)


class TestPearson:
    def test_perfect_positive(self):
        u = {"a": 1.0, "b": 2.0, "c": 3.0}
        v = {"a": 2.0, "b": 4.0, "c": 6.0}
        assert pearson_similarity(u, v) == pytest.approx(1.0)

    def test_perfect_negative_maps_to_zero(self):
        u = {"a": 1.0, "b": 3.0}
        v = {"a": 3.0, "b": 1.0}
        assert pearson_similarity(u, v) == pytest.approx(0.0)

    def test_degenerate_single_dimension(self):
        assert pearson_similarity({"a": 1.0}, {"a": 2.0}) == 0.0


class TestRegistry:
    def test_all_measures_registered(self):
        assert set(VECTOR_MEASURES) == {"cosine", "jaccard", "pearson"}


@given(vectors, vectors)
def test_measures_bounded_and_symmetric(u, v):
    for measure in VECTOR_MEASURES.values():
        value = measure(u, v)
        assert 0.0 <= value <= 1.0
        assert measure(v, u) == pytest.approx(value)


@given(
    st.dictionaries(
        st.sampled_from("abcdefgh"),
        st.floats(min_value=0.01, max_value=10.0),
        min_size=1,
        max_size=6,
    )
)
def test_self_similarity_maximal(v):
    # Weights bounded away from zero: denormal weights underflow the
    # norm product, a float artifact rather than a measure property.
    assert cosine_similarity(v, v) == pytest.approx(1.0)
    assert jaccard_similarity(v, v) == pytest.approx(1.0)
