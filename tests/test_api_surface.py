"""Coverage for the remaining public API surface and edge cases."""

from __future__ import annotations

import pytest

from repro import (
    XSDF,
    AmbiguityWeights,
    DisambiguationApproach,
    SimilarityWeights,
    XSDFConfig,
    __version__,
)
from repro.core.results import DisambiguationResult, SenseAssignment


class TestTopLevelPackage:
    def test_version(self):
        assert __version__ == "1.0.0"

    def test_reexports_are_usable(self, lexicon):
        config = XSDFConfig(
            ambiguity_weights=AmbiguityWeights(1, 1, 1),
            similarity_weights=SimilarityWeights(1, 1, 1),
            approach=DisambiguationApproach.CONCEPT_BASED,
        )
        assert XSDF(lexicon, config).network is lexicon


class TestResultEdgeCases:
    def test_empty_result(self):
        result = DisambiguationResult(
            assignments=[], n_nodes=5, n_targets=0, radius=2
        )
        assert result.coverage == 0.0
        assert result.concept_map() == {}
        assert result.assignment_for(0) is None
        assert result.to_dict()["assignments"] == []

    def test_margin_with_single_candidate(self):
        assignment = SenseAssignment(
            node_index=0, label="x", chosen=("only",), score=0.7,
            concept_score=0.7, context_score=0.0, ambiguity=0.1,
            scores={("only",): 0.7},
        )
        assert assignment.margin == 0.7  # no runner-up: margin = score

    def test_concept_id_is_first_element(self):
        assignment = SenseAssignment(
            node_index=0, label="x", chosen=("a", "b"), score=0.5,
            concept_score=0.5, context_score=0.0, ambiguity=0.0,
            scores={("a", "b"): 0.5},
        )
        assert assignment.concept_id == "a"


class TestSemanticXMLVariants:
    def test_semantic_output_compact_mode(self, lexicon):
        from repro.xmltree import build_tree, parse, serialize_semantic_tree

        tree = build_tree(parse("<films><picture/></films>").root)
        output = serialize_semantic_tree(
            tree, {tree.find("picture").index: "movie.n.01"}, lexicon,
            pretty=False,
        )
        assert "\n" not in output.strip().splitlines()[-1]
        parse(output)

    def test_attribute_nodes_serialized_with_underscores(self, lexicon):
        from repro.xmltree import build_tree, parse, serialize_semantic_tree

        tree = build_tree(parse('<m FirstName="Grace"/>').root)
        attr = next(n for n in tree if n.label == "first name")
        output = serialize_semantic_tree(
            tree, {attr.index: "first_name.n.01"}, lexicon
        )
        assert "<first_name" in output


class TestHarnessInternals:
    def test_evaluate_quality_without_cache(self, lexicon):
        from repro.datasets import generate_test_corpus
        from repro.evaluation import evaluate_quality, make_system_factory

        corpus = generate_test_corpus()
        system = make_system_factory("first-sense", lexicon)()
        docs = corpus.by_dataset("niagara_club")[:1]
        result = evaluate_quality(system, docs, lexicon, tree_cache=None)
        assert result.n_gold > 0

    def test_xsdf_factory_default_radius(self, lexicon):
        from repro.evaluation import make_system_factory

        system = make_system_factory("xsdf-combined", lexicon)()
        assert system.config.sphere_radius == 2


class TestNetworkMisc:
    def test_repr_helpers(self, lexicon):
        assert "mini-wordnet" in repr(lexicon)

    def test_senses_of_unknown_word_empty(self, lexicon):
        assert lexicon.senses("qqqqqq") == []

    def test_ring_zero_is_center(self, lexicon):
        assert lexicon.ring("actor.n.01", 0) == ["actor.n.01"]

    def test_io_of_synthetic_network(self, tmp_path):
        from repro.semnet import (
            GeneratorConfig,
            generate_network,
            load_network,
            save_network,
        )

        network = generate_network(GeneratorConfig(n_concepts=60, seed=3))
        path = tmp_path / "synthetic.json"
        save_network(network, path)
        restored = load_network(path)
        assert restored.stats() == network.stats()


class TestXPathIntegration:
    def test_select_on_pipeline_built_tree(self, lexicon, figure1_xml):
        from repro.xmltree import select, select_one

        tree = XSDF(lexicon, XSDFConfig()).build_tree(figure1_xml)
        stars = select(tree, "//cast/star")
        assert len(stars) == 2
        assert select_one(tree, "/film/picture/plot") is not None

    def test_select_targets_via_xpath(self, lexicon, figure1_xml):
        """XPath + explicit targets: disambiguate only the cast subtree."""
        from repro.xmltree import select

        xsdf = XSDF(lexicon, XSDFConfig(sphere_radius=2))
        tree = xsdf.build_tree(figure1_xml)
        targets = select(tree, "//cast//*") + select(tree, "//cast")
        result = xsdf.disambiguate_tree(tree, targets=targets)
        labels = {a.label for a in result.assignments}
        assert "star" in labels and "kelly" in labels
        assert "genre" not in labels
