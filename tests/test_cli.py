"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def xml_file(tmp_path, figure1_xml):
    path = tmp_path / "doc.xml"
    path.write_text(figure1_xml, encoding="utf-8")
    return str(path)


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestDisambiguate:
    def test_report(self, xml_file):
        code, output = run(["disambiguate", xml_file])
        assert code == 0
        assert "targets" in output
        assert "movie.n.01" in output

    def test_xml_output(self, xml_file):
        code, output = run(["disambiguate", xml_file, "--xml"])
        assert code == 0
        assert output.startswith('<?xml version="1.0"?>')
        assert 'concept="' in output

    def test_flags(self, xml_file):
        code, output = run([
            "disambiguate", xml_file,
            "--radius", "1",
            "--approach", "concept",
            "--threshold", "0.02",
            "--weights", "1,0,1",
            "--strip-target-dimension",
        ])
        assert code == 0
        assert "d=1" in output

    def test_structure_only(self, xml_file):
        code, output = run(["disambiguate", xml_file, "--structure-only"])
        assert code == 0
        assert "kelly" not in output

    def test_bad_weights(self, xml_file):
        with pytest.raises(SystemExit):
            run(["disambiguate", xml_file, "--weights", "nope"])

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            run(["disambiguate", "/nonexistent/file.xml"])


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestBatch:
    def test_batch_to_jsonl(self, tmp_path, figure1_xml):
        import json

        for i in range(3):
            (tmp_path / f"doc-{i}.xml").write_text(
                figure1_xml, encoding="utf-8"
            )
        out_path = tmp_path / "results.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code, output = run([
            "batch", str(tmp_path / "*.xml"),
            "--out", str(out_path),
            "--metrics", str(metrics_path),
        ])
        assert code == 0
        assert "3 documents, 0 failed" in output
        lines = out_path.read_text().splitlines()
        assert len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert all(r["ok"] for r in records)
        assert records[0]["result"]["assignments"]
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["batch_documents"] == 3
        assert "similarity_pairs" in metrics["caches"]

    def test_batch_failure_exit_code(self, tmp_path, figure1_xml):
        (tmp_path / "good.xml").write_text(figure1_xml, encoding="utf-8")
        (tmp_path / "bad.xml").write_text("<oops>", encoding="utf-8")
        out_path = tmp_path / "results.jsonl"
        code, output = run([
            "batch", str(tmp_path / "*.xml"), "--out", str(out_path),
        ])
        assert code == 1
        assert "1 failed" in output
        assert "FAILED" in output
        assert len(out_path.read_text().splitlines()) == 2

    def test_batch_no_match(self):
        with pytest.raises(SystemExit):
            run(["batch", "/nonexistent/*.xml"])

    def test_batch_dict_index_is_byte_identical(self, tmp_path, figure1_xml):
        for i in range(2):
            (tmp_path / f"doc-{i}.xml").write_text(
                figure1_xml, encoding="utf-8"
            )
        packed_out = tmp_path / "packed.jsonl"
        dict_out = tmp_path / "dict.jsonl"
        code, _ = run([
            "batch", str(tmp_path / "*.xml"), "--out", str(packed_out),
        ])
        assert code == 0
        code, _ = run([
            "batch", str(tmp_path / "*.xml"), "--out", str(dict_out),
            "--dict-index",
        ])
        assert code == 0
        assert packed_out.read_bytes() == dict_out.read_bytes()

    def test_batch_profile_prints_summary(self, tmp_path, figure1_xml):
        (tmp_path / "doc.xml").write_text(figure1_xml, encoding="utf-8")
        out_path = tmp_path / "results.jsonl"
        code, output = run([
            "batch", str(tmp_path / "*.xml"), "--out", str(out_path),
            "--profile",
        ])
        assert code == 0
        assert "--- profile" in output
        assert "cumulative" in output
        assert len(out_path.read_text().splitlines()) == 1


class TestAudit:
    def test_ranking(self, xml_file):
        code, output = run(["audit", xml_file, "--top", "4"])
        assert code == 0
        lines = [line for line in output.splitlines() if line.strip()]
        assert len(lines) == 1 + 4  # header + top rows
        assert "Amb_Deg" in lines[0]


class TestLexicon:
    def test_stats(self):
        code, output = run(["lexicon"])
        assert code == 0
        assert "concepts" in output
        assert "max_polysemy" in output

    def test_word_lookup(self):
        code, output = run(["lexicon", "--word", "star"])
        assert code == 0
        assert "star.n.01" in output and "star.n.02" in output

    def test_unknown_word(self):
        code, output = run(["lexicon", "--word", "zzzznothing"])
        assert code == 1
        assert "not in the lexicon" in output


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("disambiguate", "audit", "lexicon"):
            args = parser.parse_args(
                [command] + (["f.xml"] if command != "lexicon" else [])
            )
            assert args.command == command


class TestMatch:
    def test_match_two_documents(self, tmp_path, figure1_xml):
        a = tmp_path / "a.xml"
        a.write_text(figure1_xml, encoding="utf-8")
        b = tmp_path / "b.xml"
        b.write_text(
            "<movies><movie><name>Vertigo</name>"
            "<actors><actor>Novak</actor></actors></movie></movies>",
            encoding="utf-8",
        )
        code, output = run(["match", str(a), str(b)])
        assert code == 0
        assert "movie" in output

    def test_no_matches_exit_code(self, tmp_path):
        a = tmp_path / "a.xml"
        a.write_text("<zzz/>", encoding="utf-8")
        b = tmp_path / "b.xml"
        b.write_text("<qqq/>", encoding="utf-8")
        code, output = run(["match", str(a), str(b)])
        assert code == 1
        assert "no correspondences" in output


class TestValidate:
    def test_valid_network(self, tmp_path, lexicon):
        from repro.semnet.io import save_network

        path = tmp_path / "net.json"
        save_network(lexicon, path)
        code, output = run(["validate", str(path)])
        assert code == 0
        assert "ok:" in output

    def test_unreadable_network(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{}", encoding="utf-8")
        code, output = run(["validate", str(path)])
        assert code == 2
        assert "unreadable" in output

    def test_invalid_network(self, tmp_path):
        import json

        from repro.semnet.io import FORMAT_NAME

        document = {
            "format": FORMAT_NAME, "version": 1, "name": "bad",
            "concepts": [
                {"id": "a", "words": ["x"], "gloss": "g"},
                {"id": "b", "words": ["y"], "gloss": "g"},
            ],
            "relations": [
                {"source": "a", "relation": "hypernym", "target": "b"},
                {"source": "b", "relation": "hypernym", "target": "a"},
            ],
        }
        path = tmp_path / "cyclic.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        code, output = run(["validate", str(path)])
        assert code == 1
        assert "isa-cycle" in output


class TestBatchResilience:
    """xmltree recovery end to end: one malformed document is isolated
    by ``--on-error`` policy while the survivors' JSONL stays
    byte-identical to a clean run."""

    def _write_corpus(self, tmp_path, figure1_xml):
        for i in range(2):
            (tmp_path / f"good-{i}.xml").write_text(
                figure1_xml, encoding="utf-8"
            )
        (tmp_path / "broken.xml").write_text(
            "<unclosed><tag>", encoding="utf-8"
        )

    def _clean_lines(self, tmp_path, figure1_xml):
        clean_dir = tmp_path / "clean"
        clean_dir.mkdir()
        for i in range(2):
            (clean_dir / f"good-{i}.xml").write_text(
                figure1_xml, encoding="utf-8"
            )
        out_path = tmp_path / "clean.jsonl"
        code, _ = run([
            "batch", str(clean_dir / "*.xml"), "--out", str(out_path),
        ])
        assert code == 0
        lines = out_path.read_text().splitlines()
        # Survivor comparisons key on the basename-invariant payload.
        return [line.replace(str(clean_dir), str(tmp_path)) for line in lines]

    def test_on_error_skip_isolates_the_parse_failure(
        self, tmp_path, figure1_xml
    ):
        self._write_corpus(tmp_path, figure1_xml)
        out_path = tmp_path / "results.jsonl"
        code, output = run([
            "batch", str(tmp_path / "good-*.xml"), str(tmp_path / "broken.xml"),
            "--on-error", "skip", "--out", str(out_path),
        ])
        assert code == 1
        assert "1 failed" in output
        assert "FAILED" in output and "stage=parse" in output
        lines = out_path.read_text().splitlines()
        assert len(lines) == 3  # skip keeps the failure in the JSONL
        assert self._clean_lines(tmp_path, figure1_xml) == [
            line for line in lines if '"ok": true' in line
        ]

    def test_on_error_quarantine_sidecars_the_failure(
        self, tmp_path, figure1_xml
    ):
        import json

        self._write_corpus(tmp_path, figure1_xml)
        out_path = tmp_path / "results.jsonl"
        sidecar = tmp_path / "bad.jsonl"
        code, output = run([
            "batch", str(tmp_path / "good-*.xml"), str(tmp_path / "broken.xml"),
            "--on-error", "quarantine", "--quarantine", str(sidecar),
            "--out", str(out_path),
        ])
        assert code == 0  # quarantine is a success policy
        assert "QUARANTINED" in output
        assert "1 quarantined" in output
        survivors = out_path.read_text().splitlines()
        assert len(survivors) == 2
        assert all('"ok": true' in line for line in survivors)
        assert self._clean_lines(tmp_path, figure1_xml) == survivors
        (entry,) = [
            json.loads(line) for line in sidecar.read_text().splitlines()
        ]
        assert entry["ok"] is False
        assert entry["outcome"]["status"] == "failed"
        assert entry["outcome"]["stage"] == "parse"

    def test_on_error_fail_aborts_with_exit_code_2(
        self, tmp_path, figure1_xml
    ):
        self._write_corpus(tmp_path, figure1_xml)
        out_path = tmp_path / "results.jsonl"
        code, output = run([
            "batch", str(tmp_path / "broken.xml"), str(tmp_path / "good-*.xml"),
            "--on-error", "fail", "--out", str(out_path),
        ])
        assert code == 2
        assert "ABORTED (--on-error=fail)" in output
        # Partial results (up to the abort) are still written.
        assert len(out_path.read_text().splitlines()) >= 1

    def test_resilience_flags_are_validated(self, tmp_path, figure1_xml):
        (tmp_path / "doc.xml").write_text(figure1_xml, encoding="utf-8")
        with pytest.raises(SystemExit):
            run([
                "batch", str(tmp_path / "doc.xml"),
                "--doc-timeout", "0",
            ])
        with pytest.raises(SystemExit):
            run([
                "batch", str(tmp_path / "doc.xml"),
                "--on-error", "explode",
            ])

    def test_metrics_json_carries_resilience_counters(
        self, tmp_path, figure1_xml
    ):
        import json

        self._write_corpus(tmp_path, figure1_xml)
        metrics_path = tmp_path / "metrics.json"
        out_path = tmp_path / "results.jsonl"
        code, _ = run([
            "batch", str(tmp_path / "*.xml"),
            "--out", str(out_path), "--metrics", str(metrics_path),
        ])
        assert code == 1
        report = json.loads(metrics_path.read_text())
        assert report["counters"]["outcome_failed"] == 1
        assert report["counters"]["outcome_ok"] == 2
        events = [e for e in report["events"] if e["event"] == "doc_failed"]
        assert len(events) == 1
        assert events[0]["stage"] == "parse"


class TestJournalResume:
    """``--journal`` / ``--resume`` through the real entry point: the
    journal skips completed documents on resume and the merged output
    stays byte-identical to the uninterrupted run."""

    def _corpus(self, tmp_path, figure1_xml, n=3):
        for i in range(n):
            (tmp_path / f"doc-{i}.xml").write_text(
                figure1_xml, encoding="utf-8"
            )
        return str(tmp_path / "doc-*.xml")

    def test_resume_replays_everything_byte_identically(
        self, tmp_path, figure1_xml
    ):
        pattern = self._corpus(tmp_path, figure1_xml)
        journal = tmp_path / "batch.rxjf"
        first_out = tmp_path / "first.jsonl"
        code, output = run([
            "batch", pattern, "--out", str(first_out),
            "--journal", str(journal),
        ])
        assert code == 0
        assert "journal replayed=0 scored=3" in output
        assert journal.exists()
        resumed_out = tmp_path / "resumed.jsonl"
        code, output = run([
            "batch", pattern, "--out", str(resumed_out),
            "--journal", str(journal), "--resume",
        ])
        assert code == 0
        assert "journal replayed=3 scored=0" in output
        assert resumed_out.read_bytes() == first_out.read_bytes()

    def test_edited_document_is_rescored_not_replayed(
        self, tmp_path, figure1_xml
    ):
        # The journal keys on (name, sha256(xml)): rewriting one
        # document invalidates only its own entry.
        pattern = self._corpus(tmp_path, figure1_xml)
        journal = tmp_path / "batch.rxjf"
        out_path = tmp_path / "results.jsonl"
        code, _ = run([
            "batch", pattern, "--out", str(out_path),
            "--journal", str(journal),
        ])
        assert code == 0
        (tmp_path / "doc-1.xml").write_text(
            figure1_xml.replace("?>", "?>\n<!-- edited -->", 1),
            encoding="utf-8",
        )
        code, output = run([
            "batch", pattern, "--out", str(out_path),
            "--journal", str(journal), "--resume",
        ])
        assert code == 0
        assert "journal replayed=2 scored=1" in output
        assert len(out_path.read_text().splitlines()) == 3

    def test_resume_without_journal_is_refused(self, tmp_path, figure1_xml):
        pattern = self._corpus(tmp_path, figure1_xml, n=1)
        with pytest.raises(SystemExit, match="requires --journal"):
            run(["batch", pattern, "--resume"])

    def test_resume_refuses_a_foreign_journal(self, tmp_path, figure1_xml):
        from repro.runtime.journal import JournalWriter

        pattern = self._corpus(tmp_path, figure1_xml, n=1)
        journal = tmp_path / "foreign.rxjf"
        JournalWriter(
            journal, meta={"config": "someone-else", "network": "elsewhere"}
        ).close()
        with pytest.raises(SystemExit, match="different configuration"):
            run([
                "batch", pattern, "--journal", str(journal), "--resume",
            ])

    def test_bad_chaos_fault_spec_is_refused(self, tmp_path, figure1_xml):
        pattern = self._corpus(tmp_path, figure1_xml, n=1)
        with pytest.raises(SystemExit, match="bad fault spec"):
            run(["batch", pattern, "--chaos-fault", "explode:*"])


class TestPackAndStore:
    def _pack_lexicon(self, tmp_path, lexicon):
        """Bundled-lexicon shard + network JSON, written via the CLI."""
        from repro.semnet.io import save_network

        shard = tmp_path / "lexicon.rxpd"
        network_json = tmp_path / "lexicon.network.json"
        save_network(lexicon, str(network_json))
        # Pack from the JSON file so the shard's tables were built from
        # the exact network the batch runs will load (float summation
        # order differs between a constructed network and its JSON
        # round-trip, so cross-source comparisons are not bit-exact).
        code, output = run([
            "pack", str(shard), "--network", str(network_json), "--verify",
        ])
        assert code == 0
        return shard, network_json, output

    def test_pack_writes_and_verifies_a_shard(self, tmp_path, lexicon):
        shard, _, output = self._pack_lexicon(tmp_path, lexicon)
        assert shard.is_file()
        assert f"packed {len(lexicon)} concepts" in output
        assert "verified: body CRC ok" in output

    def test_pack_synthetic_network(self, tmp_path):
        shard = tmp_path / "synth.rxpd"
        code, output = run([
            "pack", str(shard), "--synthetic", "150", "--seed", "9",
        ])
        assert code == 0
        assert "packed 150 concepts" in output

    def test_pack_rejects_conflicting_sources(self, tmp_path):
        with pytest.raises(SystemExit):
            run(["pack", str(tmp_path / "x.rxpd"),
                 "--network", "a.json", "--synthetic", "10"])

    def test_batch_shard_matches_plain_batch(
        self, tmp_path, lexicon, xml_file
    ):
        shard, network_json, _ = self._pack_lexicon(tmp_path, lexicon)
        plain_out = tmp_path / "plain.jsonl"
        shard_out = tmp_path / "shard.jsonl"
        code, _ = run([
            "batch", xml_file, "--out", str(plain_out),
            "--network", str(network_json),
        ])
        assert code == 0
        code, _ = run([
            "batch", xml_file, "--out", str(shard_out),
            "--network", str(network_json), "--shard", str(shard),
        ])
        assert code == 0
        assert shard_out.read_bytes() == plain_out.read_bytes()

    def test_batch_summary_reports_index_backing(
        self, tmp_path, lexicon, xml_file
    ):
        shard, network_json, _ = self._pack_lexicon(tmp_path, lexicon)
        code, output = run([
            "batch", xml_file, "--out", str(tmp_path / "r.jsonl"),
            "--network", str(network_json), "--shard", str(shard),
        ])
        assert code == 0
        assert "index=mmap" in output
        code, output = run([
            "batch", xml_file, "--out", str(tmp_path / "r2.jsonl"),
        ])
        assert code == 0
        assert "index=heap" in output

    def test_batch_registry_routes_and_matches(
        self, tmp_path, lexicon, xml_file
    ):
        shard, network_json, _ = self._pack_lexicon(tmp_path, lexicon)
        (tmp_path / "registry.toml").write_text(
            'default = "general"\n'
            '[networks.general]\n'
            f'network = "{network_json.name}"\n'
            f'shard = "{shard.name}"\n'
        )
        plain_out = tmp_path / "plain.jsonl"
        reg_out = tmp_path / "reg.jsonl"
        run([
            "batch", xml_file, "--out", str(plain_out),
            "--network", str(network_json),
        ])
        code, _ = run([
            "batch", xml_file, "--out", str(reg_out),
            "--registry", str(tmp_path / "registry.toml"),
            "--domain", "general",
        ])
        assert code == 0
        assert reg_out.read_bytes() == plain_out.read_bytes()

    def test_batch_flag_conflicts_exit_cleanly(self, tmp_path, xml_file):
        for argv in (
            ["batch", xml_file, "--registry", "r.toml", "--network", "n"],
            ["batch", xml_file, "--domain", "x"],
            ["batch", xml_file, "--shard", "s.rxpd"],
            ["batch", xml_file, "--shard", "s.rxpd", "--network", "n.json",
             "--dict-index"],
        ):
            with pytest.raises(SystemExit):
                run(argv)

    def test_batch_stale_shard_fails_loudly(self, tmp_path, lexicon, xml_file):
        from repro.runtime import PackedIndex, write_shard
        from repro.semnet.generator import GeneratorConfig, generate_network
        from repro.semnet.io import save_network

        network_json = tmp_path / "lexicon.network.json"
        save_network(lexicon, str(network_json))
        other = generate_network(GeneratorConfig(n_concepts=50, seed=3))
        shard = tmp_path / "stale.rxpd"
        write_shard(
            PackedIndex(other), str(shard), fingerprint=other.fingerprint()
        )
        with pytest.raises(SystemExit, match="cannot attach shard"):
            run([
                "batch", xml_file, "--out", str(tmp_path / "r.jsonl"),
                "--network", str(network_json), "--shard", str(shard),
            ])
