"""Cross-module integration tests: every system over every dataset.

Smoke-level quality floors that tie the substrates, framework,
baselines, datasets, and evaluation harness together — a regression in
any layer (lexicon edits, generator changes, scorer changes) surfaces
here before it silently degrades the paper benchmarks.
"""

from __future__ import annotations

import pytest

from repro.datasets import DATASETS, generate_test_corpus
from repro.evaluation import evaluate_quality, make_system_factory
from repro.semnet.io import load_network, save_network
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize_document


@pytest.fixture(scope="module")
def corpus():
    return generate_test_corpus()


@pytest.fixture(scope="module")
def tree_cache():
    return {}


class TestEverySystemRunsEverywhere:
    @pytest.mark.parametrize(
        "system_name",
        ["xsdf-combined-d2", "rpd", "vsd", "parent", "subtree",
         "first-sense", "random", "bow"],
    )
    def test_system_covers_all_datasets(
        self, system_name, corpus, lexicon, tree_cache
    ):
        system = make_system_factory(system_name, lexicon)()
        for spec in DATASETS:
            docs = corpus.by_dataset(spec.name)[:1]
            result = evaluate_quality(system, docs, lexicon, tree_cache)
            assert result.n_predicted > 0, (system_name, spec.name)
            # Full coverage: every evaluable node receives an answer.
            assert result.n_predicted == result.n_gold


class TestQualityFloors:
    def test_xsdf_beats_random_everywhere(self, corpus, lexicon, tree_cache):
        xsdf = make_system_factory("xsdf-combined-d2", lexicon)()
        random_baseline = make_system_factory("random", lexicon)()
        for group in (1, 2, 3, 4):
            docs = corpus.by_group(group)
            ours = evaluate_quality(xsdf, docs, lexicon, tree_cache)
            theirs = evaluate_quality(random_baseline, docs, lexicon, tree_cache)
            assert ours.prf.f_value > theirs.prf.f_value, group

    def test_xsdf_quality_floor_per_group(self, corpus, lexicon, tree_cache):
        # The paper reports 0.55-0.69 on real WordNet; our substrate
        # should not fall below 0.55 on any group at a sensible config.
        xsdf = make_system_factory("xsdf-combined-d2", lexicon)()
        for group in (1, 2, 3, 4):
            result = evaluate_quality(
                xsdf, corpus.by_group(group), lexicon, tree_cache
            )
            assert result.prf.f_value >= 0.55, group


class TestPipelineRoundTrips:
    def test_all_documents_survive_serialize_reparse(self, corpus):
        for doc in list(corpus)[::7]:  # a sample across datasets
            document = parse(doc.xml)
            again = parse(serialize_document(document))
            assert again.root.name == document.root.name

    def test_semantic_output_for_every_dataset(self, corpus, lexicon):
        from repro.core import XSDF, XSDFConfig

        xsdf = XSDF(lexicon, XSDFConfig(sphere_radius=1))
        for spec in DATASETS:
            doc = corpus.by_dataset(spec.name)[0]
            output = xsdf.to_semantic_xml(doc.xml)
            assert 'concept="' in output, spec.name
            parse(output)  # well-formed

    def test_lexicon_roundtrip_preserves_quality(
        self, corpus, lexicon, tree_cache, tmp_path
    ):
        """Disambiguation through a save/load lexicon copy is identical."""
        path = tmp_path / "lexicon.json"
        save_network(lexicon, path)
        restored = load_network(path)
        docs = corpus.by_dataset("imdb_movies")[:2]
        original = evaluate_quality(
            make_system_factory("xsdf-concept-d2", lexicon)(),
            docs, lexicon, tree_cache,
        )
        copied = evaluate_quality(
            make_system_factory("xsdf-concept-d2", restored)(),
            docs, restored, {},
        )
        assert original.prf.f_value == pytest.approx(copied.prf.f_value)
