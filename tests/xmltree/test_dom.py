"""Unit tests for the rooted ordered labeled tree (paper Definition 1)."""

from __future__ import annotations

import pytest

from repro.xmltree.dom import NodeKind, XMLNode, XMLTree, build_tree
from repro.xmltree.errors import TreeError
from repro.xmltree.parser import parse


def make_tree(xml: str, **kwargs) -> XMLTree:
    return build_tree(parse(xml).root, **kwargs)


class TestPreorderIndexing:
    def test_indices_follow_document_order(self, figure6_tree):
        labels = [figure6_tree[i].label for i in range(len(figure6_tree))]
        assert labels == [
            "films", "picture", "cast", "star", "stewart", "star", "kelly",
            "plot",
        ]

    def test_depths(self, figure6_tree):
        assert figure6_tree[0].depth == 0
        assert figure6_tree[1].depth == 1
        assert figure6_tree[2].depth == 2
        assert figure6_tree[4].depth == 4  # stewart token

    def test_bad_index_raises(self, figure6_tree):
        with pytest.raises(TreeError):
            figure6_tree[99]

    def test_iteration_matches_indexing(self, figure6_tree):
        assert [n.index for n in figure6_tree] == list(range(len(figure6_tree)))


class TestStructuralQuantities:
    def test_fan_out(self, figure6_tree):
        cast = figure6_tree[2]
        assert cast.fan_out == 2

    def test_density_counts_distinct_labels(self, figure6_tree):
        # cast has two children, both labeled "star": density 1, fan-out 2.
        cast = figure6_tree[2]
        assert cast.density == 1
        picture = figure6_tree[1]
        assert picture.density == 2  # cast + plot

    def test_tree_maxima(self, figure6_tree):
        assert figure6_tree.max_depth == 4
        assert figure6_tree.max_fan_out == 2
        assert figure6_tree.max_density == 2

    def test_leaf_properties(self, figure6_tree):
        kelly = figure6_tree.find("kelly")
        assert kelly.is_leaf
        assert kelly.fan_out == 0
        assert kelly.density == 0


class TestAttributeAndValueModeling:
    def test_attributes_sorted_and_before_elements(self):
        tree = make_tree('<m z="1" a="2"><b/></m>')
        labels = [child.label for child in tree.root.children]
        # Attributes sorted by name, then sub-elements.
        assert labels == ["a", "z", "b"]
        assert tree.root.children[0].kind is NodeKind.ATTRIBUTE

    def test_value_tokens_become_leaves(self):
        tree = make_tree("<a>Rear Window</a>")
        tokens = [n for n in tree if n.kind is NodeKind.VALUE_TOKEN]
        assert [t.label for t in tokens] == ["rear", "window"]
        assert all(t.parent is tree.root for t in tokens)

    def test_structure_only_mode_drops_values(self):
        tree = make_tree("<a x='v'>text here</a>", include_values=False)
        assert all(n.kind is not NodeKind.VALUE_TOKEN for n in tree)
        # The attribute node itself remains (structure).
        assert any(n.kind is NodeKind.ATTRIBUTE for n in tree)

    def test_attribute_value_tokens_attach_to_attribute(self):
        tree = make_tree('<m title="Rear Window"/>')
        title = tree.find("title")
        assert [c.label for c in title.children] == ["rear", "window"]

    def test_default_label_processor_splits_compounds(self):
        tree = make_tree("<FirstName/>")
        assert tree.root.label == "first name"
        assert tree.root.tokens == ("first", "name")
        assert tree.root.is_compound


class TestTraversals:
    def test_root_path(self, figure6_tree):
        kelly = figure6_tree.find("kelly")
        assert [n.label for n in kelly.root_path()] == [
            "films", "picture", "cast", "star", "kelly",
        ]

    def test_ancestors(self, figure6_tree):
        kelly = figure6_tree.find("kelly")
        assert [n.label for n in kelly.ancestors()] == [
            "star", "cast", "picture", "films",
        ]

    def test_preorder_subtree(self, figure6_tree):
        cast = figure6_tree[2]
        assert [n.label for n in cast.preorder()] == [
            "cast", "star", "stewart", "star", "kelly",
        ]

    def test_subtree_size(self, figure6_tree):
        assert figure6_tree[2].subtree_size() == 5
        assert figure6_tree.root.subtree_size() == len(figure6_tree)

    def test_find_all(self, figure6_tree):
        assert len(figure6_tree.find_all("star")) == 2

    def test_find_missing_raises(self, figure6_tree):
        with pytest.raises(TreeError):
            figure6_tree.find("nothing")


class TestDistances:
    def test_figure6_distance_example(self, figure6_tree):
        # Paper: Dist(T[2], T[6]) = 2 (cast -> star -> kelly).
        cast, kelly = figure6_tree[2], figure6_tree[6]
        assert figure6_tree.distance(cast, kelly) == 2

    def test_distance_to_self_is_zero(self, figure6_tree):
        node = figure6_tree[3]
        assert figure6_tree.distance(node, node) == 0

    def test_distance_is_symmetric(self, figure6_tree):
        a, b = figure6_tree[0], figure6_tree[6]
        assert figure6_tree.distance(a, b) == figure6_tree.distance(b, a)

    def test_distance_across_branches(self, figure6_tree):
        stewart = figure6_tree[4]
        kelly = figure6_tree[6]
        # stewart -> star -> cast -> star -> kelly
        assert figure6_tree.distance(stewart, kelly) == 4

    def test_nodes_at_distance_matches_figure6_ring(self, figure6_tree):
        cast = figure6_tree[2]
        ring1 = figure6_tree.nodes_at_distance(cast, 1)
        assert sorted(n.label for n in ring1) == ["picture", "star", "star"]

    def test_foreign_node_rejected(self, figure6_tree):
        other = XMLTree(XMLNode("x"))
        with pytest.raises(TreeError):
            figure6_tree.distance(figure6_tree[0], other.root)


class TestImmutability:
    def test_frozen_nodes_reject_children(self, figure6_tree):
        with pytest.raises(TreeError):
            figure6_tree.root.add_child(XMLNode("new"))
