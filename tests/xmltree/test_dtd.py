"""Unit tests for the DTD-lite parser and validator."""

from __future__ import annotations

import pytest

from repro.xmltree.dtd import parse_dtd
from repro.xmltree.errors import DTDError, ValidationError
from repro.xmltree.parser import parse

MOVIES_DTD = """
<!ELEMENT movies (movie+)>
<!ELEMENT movie (name, genre?, actor*)>
<!ATTLIST movie year CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT genre (#PCDATA)>
<!ELEMENT actor (#PCDATA)>
"""


class TestDeclarationParsing:
    def test_element_declarations_collected(self):
        dtd = parse_dtd(MOVIES_DTD)
        assert set(dtd.elements) == {"movies", "movie", "name", "genre", "actor"}

    def test_attlist_collected(self):
        dtd = parse_dtd(MOVIES_DTD)
        decl = dtd.attributes["movie"][0]
        assert (decl.name, decl.attr_type, decl.default) == (
            "year", "CDATA", "#REQUIRED",
        )

    def test_empty_and_any(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY><!ELEMENT b ANY>")
        assert dtd.elements["a"].model == "EMPTY"
        assert dtd.elements["b"].model == "ANY"

    def test_mixed_content(self):
        dtd = parse_dtd("<!ELEMENT p (#PCDATA | em | strong)*>")
        assert dtd.elements["p"].model == "MIXED"
        assert dtd.elements["p"].mixed_names == {"em", "strong"}

    def test_malformed_declaration_raises(self):
        with pytest.raises(DTDError):
            parse_dtd("<!ELEMENT broken")

    def test_unsupported_declaration_raises(self):
        with pytest.raises(DTDError, match="unsupported"):
            parse_dtd("<!NOTATION gif SYSTEM 'image/gif'>")

    def test_mixing_separators_rejected(self):
        with pytest.raises(DTDError, match="mix"):
            parse_dtd("<!ELEMENT a (b, c | d)>")


class TestValidation:
    def test_valid_document_passes(self):
        dtd = parse_dtd(MOVIES_DTD)
        root = parse(
            '<movies><movie year="1954"><name>RW</name>'
            "<genre>mystery</genre><actor>Kelly</actor></movie></movies>"
        ).root
        dtd.validate(root)  # must not raise

    def test_optional_elements_may_be_absent(self):
        dtd = parse_dtd(MOVIES_DTD)
        root = parse(
            '<movies><movie year="1954"><name>RW</name></movie></movies>'
        ).root
        dtd.validate(root)

    def test_missing_required_child(self):
        dtd = parse_dtd(MOVIES_DTD)
        root = parse('<movies><movie year="1954"/></movies>').root
        with pytest.raises(ValidationError, match="content model"):
            dtd.validate(root)

    def test_wrong_child_order(self):
        dtd = parse_dtd(MOVIES_DTD)
        root = parse(
            '<movies><movie year="x"><genre>g</genre><name>n</name>'
            "</movie></movies>"
        ).root
        with pytest.raises(ValidationError):
            dtd.validate(root)

    def test_missing_required_attribute(self):
        dtd = parse_dtd(MOVIES_DTD)
        root = parse("<movies><movie><name>n</name></movie></movies>").root
        with pytest.raises(ValidationError, match="required attribute"):
            dtd.validate(root)

    def test_undeclared_attribute(self):
        dtd = parse_dtd(MOVIES_DTD)
        root = parse(
            '<movies><movie year="1" rating="5"><name>n</name></movie>'
            "</movies>"
        ).root
        with pytest.raises(ValidationError, match="not declared"):
            dtd.validate(root)

    def test_undeclared_element(self):
        dtd = parse_dtd(MOVIES_DTD)
        root = parse("<unknown/>").root
        with pytest.raises(ValidationError, match="not declared"):
            dtd.validate(root)

    def test_empty_model_rejects_content(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY>")
        with pytest.raises(ValidationError, match="EMPTY"):
            dtd.validate(parse("<a>text</a>").root)

    def test_pcdata_rejects_elements(self):
        dtd = parse_dtd("<!ELEMENT a (#PCDATA)><!ELEMENT b EMPTY>")
        with pytest.raises(ValidationError, match="PCDATA"):
            dtd.validate(parse("<a><b/></a>").root)

    def test_text_in_element_content_rejected(self):
        dtd = parse_dtd("<!ELEMENT a (b)><!ELEMENT b EMPTY>")
        with pytest.raises(ValidationError, match="contains text"):
            dtd.validate(parse("<a>junk<b/></a>").root)


class TestContentModels:
    @pytest.mark.parametrize(
        "model,children,valid",
        [
            ("(b)", ["b"], True),
            ("(b)", [], False),
            ("(b?)", [], True),
            ("(b*)", ["b", "b", "b"], True),
            ("(b+)", [], False),
            ("(b+)", ["b", "b"], True),
            ("(b, c)", ["b", "c"], True),
            ("(b, c)", ["c", "b"], False),
            ("(b | c)", ["c"], True),
            ("(b | c)", ["b", "c"], False),
            ("((b | c)+, d)", ["b", "c", "b", "d"], True),
            ("((b | c)+, d)", ["d"], False),
            ("(b, (c | d)?, e*)", ["b", "d", "e", "e"], True),
            ("(b, (c | d)?, e*)", ["b", "c", "d"], False),
        ],
    )
    def test_model_matching(self, model, children, valid):
        dtd = parse_dtd(
            f"<!ELEMENT a {model}>"
            "<!ELEMENT b EMPTY><!ELEMENT c EMPTY>"
            "<!ELEMENT d EMPTY><!ELEMENT e EMPTY>"
        )
        xml = "<a>" + "".join(f"<{c}/>" for c in children) + "</a>"
        root = parse(xml).root
        if valid:
            dtd.validate(root)
        else:
            with pytest.raises(ValidationError):
                dtd.validate(root)


class TestRealGrammars:
    def test_all_dataset_grammars_parse(self):
        from repro.datasets import DATASETS

        for spec in DATASETS:
            dtd = parse_dtd(spec.dtd)
            assert dtd.elements, spec.name
