"""Edge-case tests for the XML substrate (escaping, references, limits)."""

from __future__ import annotations

import pytest

from repro.xmltree.escape import (
    PREDEFINED_ENTITIES,
    escape_attribute,
    escape_text,
    resolve_entity,
    unescape,
)
from repro.xmltree.errors import XMLEntityError, XMLSyntaxError
from repro.xmltree.lexer import tokenize
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize_document


class TestEscaping:
    def test_all_predefined_entities(self):
        for name, char in PREDEFINED_ENTITIES.items():
            assert resolve_entity(name) == char
            assert unescape(f"&{name};") == char

    def test_text_escape_leaves_quotes(self):
        assert escape_text('say "hi"') == 'say "hi"'

    def test_attribute_escape_handles_double_quotes(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"

    def test_unescape_without_ampersand_fast_path(self):
        text = "plain text"
        assert unescape(text) is text

    def test_unterminated_reference(self):
        with pytest.raises(XMLEntityError, match="unterminated"):
            unescape("broken &amp")

    def test_custom_entities(self):
        assert unescape("&me;", {"me": "value"}) == "value"


class TestCharacterReferences:
    def test_decimal_and_hex(self):
        assert unescape("&#9731;") == "☃"
        assert unescape("&#x2603;") == "☃"

    def test_uppercase_hex_marker(self):
        assert unescape("&#X41;") == "A"

    @pytest.mark.parametrize("body", ["#", "#x", "#xGG", "#12a"])
    def test_malformed_references(self, body):
        with pytest.raises(XMLEntityError, match="malformed"):
            unescape(f"&{body};")

    @pytest.mark.parametrize("body", ["#0", "#1114112", "#x110000"])
    def test_out_of_range_codepoints(self, body):
        with pytest.raises(XMLEntityError, match="out of range"):
            unescape(f"&{body};")

    def test_max_codepoint_accepted(self):
        assert unescape("&#x10FFFF;") == "\U0010ffff"


class TestLexerCorners:
    def test_entity_inside_attribute(self):
        tokens = tokenize('<a t="&#65;&amp;B"/>')
        assert tokens[0].attributes == [("t", "A&B")]

    def test_crlf_line_counting(self):
        with pytest.raises(XMLSyntaxError) as exc:
            tokenize("<a>\r\n<b x=1/></a>")
        assert exc.value.line == 2

    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1  # EOF only

    def test_whitespace_only_document_rejected_by_parser(self):
        with pytest.raises(XMLSyntaxError):
            parse("\n\t  ")

    def test_tag_name_starting_with_digit_rejected(self):
        with pytest.raises(XMLSyntaxError, match="invalid name"):
            tokenize("<1bad/>")

    def test_nested_cdata_like_text(self):
        document = parse("<a><![CDATA[ ]]&gt; not a close ]]></a>")
        assert "]]&gt;" in document.root.text()


class TestSerializerCorners:
    def test_deeply_nested_pretty_output_indents(self):
        xml = "<a><b><c><d>x</d></c></b></a>"
        output = serialize_document(parse(xml))
        assert "      <d>x</d>" in output

    def test_attribute_with_both_quote_kinds(self):
        document = parse("<a t='he said &quot;hi&quot;'/>")
        reparsed = parse(serialize_document(document))
        assert reparsed.root.attributes["t"] == 'he said "hi"'

    def test_unicode_content_roundtrip(self):
        document = parse("<a>café ☃ 日本語</a>")
        reparsed = parse(serialize_document(document))
        assert reparsed.root.text() == "café ☃ 日本語"

    def test_mixed_content_preserved_in_roundtrip(self):
        document = parse("<a>one<b/>two</a>")
        reparsed = parse(serialize_document(document))
        assert reparsed.root.text().split() == ["one", "two"]
