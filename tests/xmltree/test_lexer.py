"""Unit tests for the XML tokenizer."""

from __future__ import annotations

import pytest

from repro.xmltree.errors import XMLEntityError, XMLSyntaxError
from repro.xmltree.lexer import Token, TokenType, XMLLexer, tokenize


def types(source: str) -> list[TokenType]:
    return [token.type for token in tokenize(source)]


class TestBasicTokens:
    def test_empty_element(self):
        tokens = tokenize("<a/>")
        assert tokens[0].type is TokenType.EMPTY_TAG
        assert tokens[0].value == "a"
        assert tokens[-1].type is TokenType.EOF

    def test_start_and_end_tags(self):
        tokens = tokenize("<a></a>")
        assert [t.type for t in tokens[:2]] == [
            TokenType.START_TAG,
            TokenType.END_TAG,
        ]
        assert tokens[0].value == tokens[1].value == "a"

    def test_text_content(self):
        tokens = tokenize("<a>hello world</a>")
        assert tokens[1].type is TokenType.TEXT
        assert tokens[1].value == "hello world"

    def test_nested_elements(self):
        assert types("<a><b/><c>x</c></a>") == [
            TokenType.START_TAG,
            TokenType.EMPTY_TAG,
            TokenType.START_TAG,
            TokenType.TEXT,
            TokenType.END_TAG,
            TokenType.END_TAG,
            TokenType.EOF,
        ]

    def test_names_with_punctuation(self):
        tokens = tokenize("<directed_by/><first-name/><ns:tag/>")
        assert [t.value for t in tokens[:3]] == [
            "directed_by", "first-name", "ns:tag",
        ]

    def test_whitespace_inside_tags(self):
        tokens = tokenize('<a  x="1"\n  y="2"  ></a>')
        assert tokens[0].attributes == [("x", "1"), ("y", "2")]


class TestAttributes:
    def test_attribute_order_preserved(self):
        tokens = tokenize('<a z="1" a="2" m="3"/>')
        assert [name for name, _ in tokens[0].attributes] == ["z", "a", "m"]

    def test_single_and_double_quotes(self):
        tokens = tokenize("<a x='one' y=\"two\"/>")
        assert dict(tokens[0].attributes) == {"x": "one", "y": "two"}

    def test_attribute_entities_resolved(self):
        tokens = tokenize('<a t="a &amp; b"/>')
        assert tokens[0].attributes == [("t", "a & b")]

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError, match="duplicate attribute"):
            tokenize('<a x="1" x="2"/>')

    def test_unquoted_value_rejected(self):
        with pytest.raises(XMLSyntaxError, match="quoted"):
            tokenize("<a x=1/>")

    def test_angle_bracket_in_value_rejected(self):
        with pytest.raises(XMLSyntaxError, match="not allowed"):
            tokenize('<a x="a<b"/>')

    def test_unterminated_value(self):
        with pytest.raises(XMLSyntaxError, match="unterminated"):
            tokenize('<a x="oops>')


class TestEntities:
    def test_predefined_entities_in_text(self):
        tokens = tokenize("<a>&lt;tag&gt; &amp; &quot;x&quot; &apos;y&apos;</a>")
        assert tokens[1].value == "<tag> & \"x\" 'y'"

    def test_numeric_character_references(self):
        tokens = tokenize("<a>&#65;&#x42;</a>")
        assert tokens[1].value == "AB"

    def test_undefined_entity_raises(self):
        with pytest.raises(XMLEntityError):
            tokenize("<a>&nosuch;</a>")

    def test_internal_dtd_entity(self):
        source = (
            '<!DOCTYPE a [<!ENTITY greet "hello">]>' "<a>&greet; world</a>"
        )
        tokens = tokenize(source)
        text = [t for t in tokens if t.type is TokenType.TEXT][0]
        assert text.value == "hello world"


class TestMarkupSections:
    def test_comment(self):
        tokens = tokenize("<a><!-- note --></a>")
        assert tokens[1].type is TokenType.COMMENT
        assert tokens[1].value == " note "

    def test_double_dash_in_comment_rejected(self):
        with pytest.raises(XMLSyntaxError, match="--"):
            tokenize("<a><!-- bad -- comment --></a>")

    def test_cdata(self):
        tokens = tokenize("<a><![CDATA[<raw> & text]]></a>")
        assert tokens[1].type is TokenType.CDATA
        assert tokens[1].value == "<raw> & text"

    def test_processing_instruction(self):
        tokens = tokenize('<?xml version="1.0"?><a/>')
        assert tokens[0].type is TokenType.PI
        assert tokens[0].value.startswith("xml ")

    def test_doctype(self):
        tokens = tokenize("<!DOCTYPE play SYSTEM 'play.dtd'><play/>")
        assert tokens[0].type is TokenType.DOCTYPE
        assert tokens[0].value.startswith("play")

    def test_unterminated_comment(self):
        with pytest.raises(XMLSyntaxError, match="unterminated comment"):
            tokenize("<a><!-- oops</a>")

    def test_unterminated_cdata(self):
        with pytest.raises(XMLSyntaxError, match="CDATA"):
            tokenize("<a><![CDATA[oops</a>")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("<a>\n  <b/>\n</a>")
        b = [t for t in tokens if t.value == "b"][0]
        assert (b.line, b.column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as exc:
            tokenize("<a>\n<b x=1/></a>")
        assert exc.value.line == 2

    def test_lexer_reusable_token_stream(self):
        lexer = XMLLexer("<a>x</a>")
        stream = list(lexer.tokens())
        assert stream[-1].type is TokenType.EOF
        assert isinstance(stream[0], Token)
