"""Unit tests for the XML document parser."""

from __future__ import annotations

import pytest

from repro.xmltree.errors import XMLSyntaxError
from repro.xmltree.parser import Document, Element, Text, parse


class TestWellFormedDocuments:
    def test_single_empty_root(self):
        document = parse("<root/>")
        assert isinstance(document, Document)
        assert document.root.name == "root"
        assert document.root.children == []

    def test_nested_structure(self):
        document = parse("<a><b><c/></b><d/></a>")
        root = document.root
        assert [c.name for c in root.child_elements()] == ["b", "d"]
        assert root.find("b").find("c") is not None

    def test_text_content(self):
        document = parse("<a>hello</a>")
        assert document.root.text() == "hello"

    def test_mixed_content_preserved(self):
        document = parse("<a>one<b/>two</a>")
        kinds = [type(c).__name__ for c in document.root.children]
        assert kinds == ["Text", "Element", "Text"]

    def test_whitespace_only_text_dropped(self):
        document = parse("<a>\n  <b/>\n</a>")
        assert all(isinstance(c, Element) for c in document.root.children)

    def test_cdata_becomes_text(self):
        document = parse("<a><![CDATA[1 < 2]]></a>")
        assert document.root.text() == "1 < 2"

    def test_attributes(self):
        document = parse('<movie year="1954" genre="mystery"/>')
        assert document.root.attributes == {"year": "1954", "genre": "mystery"}

    def test_prolog_collected(self):
        document = parse(
            '<?xml version="1.0"?><!DOCTYPE a><!-- c --><a/>'
        )
        assert document.doctype == "a"
        assert document.processing_instructions[0].startswith("xml")

    def test_comments_dropped(self):
        document = parse("<a><!-- hidden --><b/></a>")
        assert [c.name for c in document.root.child_elements()] == ["b"]


class TestMalformedDocuments:
    def test_mismatched_end_tag(self):
        with pytest.raises(XMLSyntaxError, match="mismatched end tag"):
            parse("<a><b></a></b>")

    def test_unclosed_element(self):
        with pytest.raises(XMLSyntaxError, match="unexpected end of document"):
            parse("<a><b>")

    def test_multiple_roots(self):
        with pytest.raises(XMLSyntaxError, match="multiple root"):
            parse("<a/><b/>")

    def test_text_outside_root(self):
        with pytest.raises(XMLSyntaxError, match="outside root"):
            parse("stray<a/>")

    def test_empty_document(self):
        with pytest.raises(XMLSyntaxError, match="no root element"):
            parse("   ")

    def test_stray_end_tag(self):
        with pytest.raises(XMLSyntaxError):
            parse("</a>")

    def test_doctype_after_root(self):
        with pytest.raises(XMLSyntaxError, match="DOCTYPE after root"):
            parse("<a/><!DOCTYPE a>")


class TestElementHelpers:
    def test_find_returns_first_match(self):
        root = parse("<a><b i='1'/><b i='2'/></a>").root
        assert root.find("b").attributes["i"] == "1"

    def test_find_missing_returns_none(self):
        root = parse("<a/>").root
        assert root.find("zzz") is None

    def test_find_all(self):
        root = parse("<a><b/><c/><b/></a>").root
        assert len(root.find_all("b")) == 2

    def test_iter_is_preorder(self):
        root = parse("<a><b><c/></b><d/></a>").root
        assert [e.name for e in root.iter()] == ["a", "b", "c", "d"]

    def test_text_concatenates_direct_runs(self):
        root = parse("<a>x<b>skip</b>y</a>").root
        assert root.text() == "xy"


class TestRealisticDocument:
    def test_figure1_document(self, figure1_xml):
        document = parse(figure1_xml)
        picture = document.root.find("picture")
        assert picture.attributes["title"] == "Rear Window"
        cast = picture.find("cast")
        stars = cast.find_all("star")
        assert [s.text() for s in stars] == ["Stewart", "Kelly"]
