"""Property-based tests for the XML substrate (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree.dom import XMLNode, XMLTree, build_tree
from repro.xmltree.escape import escape_attribute, escape_text, unescape
from repro.xmltree.parser import parse
from repro.xmltree.serializer import serialize_document

# -- strategies ----------------------------------------------------------------

_names = st.from_regex(r"[a-z][a-z0-9]{0,7}", fullmatch=True)
_texts = st.text(
    alphabet=st.characters(
        codec="utf-8",
        categories=("Lu", "Ll", "Nd", "Zs"),
    ),
    max_size=30,
)


@st.composite
def elements(draw, depth=0):
    """Random well-formed element trees (as XML source text)."""
    name = draw(_names)
    n_attrs = draw(st.integers(0, 2))
    attr_names = draw(
        st.lists(_names, min_size=n_attrs, max_size=n_attrs, unique=True)
    )
    attrs = "".join(
        f' {a}="{escape_attribute(draw(_texts))}"' for a in attr_names
    )
    if depth >= 2 or draw(st.booleans()):
        content = escape_text(draw(_texts))
        return f"<{name}{attrs}>{content}</{name}>"
    children = draw(st.lists(elements(depth=depth + 1), max_size=3))
    return f"<{name}{attrs}>{''.join(children)}</{name}>"


@st.composite
def node_trees(draw):
    """Random XMLTree instances built directly from nodes."""
    labels = draw(st.lists(_names, min_size=1, max_size=25))
    root = XMLNode(labels[0])
    nodes = [root]
    for label in labels[1:]:
        parent = draw(st.sampled_from(nodes))
        nodes.append(parent.add_child(XMLNode(label)))
    return XMLTree(root)


# -- escaping ----------------------------------------------------------------------


@given(_texts)
def test_escape_unescape_roundtrip(text):
    assert unescape(escape_text(text)) == text


@given(_texts)
def test_attribute_escape_roundtrip(text):
    assert unescape(escape_attribute(text)) == text


@given(_texts)
def test_escaped_text_has_no_raw_markup(text):
    escaped = escape_text(text)
    assert "<" not in escaped


# -- parser / serializer round trip ----------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(elements())
def test_parse_serialize_parse_fixpoint(xml):
    first = parse(xml)
    text = serialize_document(first)
    second = parse(text)

    def shape(element):
        return (
            element.name,
            tuple(sorted(element.attributes.items())),
            element.text().split(),
            tuple(shape(c) for c in element.child_elements()),
        )

    assert shape(first.root) == shape(second.root)


@settings(max_examples=60, deadline=None)
@given(elements())
def test_build_tree_node_count_stable(xml):
    document = parse(xml)
    tree = build_tree(document.root, include_values=False)
    n_elements = len(document.root.iter())
    n_attrs = sum(len(e.attributes) for e in document.root.iter())
    assert len(tree) == n_elements + n_attrs


# -- tree distance is a metric -----------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(node_trees(), st.data())
def test_distance_metric_properties(tree, data):
    a = data.draw(st.sampled_from(tree.nodes))
    b = data.draw(st.sampled_from(tree.nodes))
    c = data.draw(st.sampled_from(tree.nodes))
    dab = tree.distance(a, b)
    assert dab == tree.distance(b, a)          # symmetry
    assert (dab == 0) == (a is b)              # identity
    assert dab <= tree.distance(a, c) + tree.distance(c, b)  # triangle


@settings(max_examples=40, deadline=None)
@given(node_trees())
def test_preorder_invariants(tree):
    # Indices are a permutation of range(n); children follow parents.
    indices = [node.index for node in tree]
    assert indices == list(range(len(tree)))
    for node in tree:
        if node.parent is not None:
            assert node.parent.index < node.index
            assert node.depth == node.parent.depth + 1


@settings(max_examples=40, deadline=None)
@given(node_trees())
def test_density_bounded_by_fan_out(tree):
    for node in tree:
        assert 0 <= node.density <= node.fan_out
