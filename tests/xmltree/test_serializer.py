"""Unit tests for XML serialization (round-trip and semantic output)."""

from __future__ import annotations

from repro.xmltree.dom import build_tree
from repro.xmltree.parser import parse
from repro.xmltree.serializer import (
    serialize_document,
    serialize_element,
    serialize_semantic_tree,
)


def roundtrip(xml: str):
    """Parse -> serialize -> parse; return both documents."""
    first = parse(xml)
    second = parse(serialize_document(first))
    return first, second


def same_structure(a, b) -> bool:
    if a.name != b.name or a.attributes != b.attributes:
        return False
    a_children = a.child_elements()
    b_children = b.child_elements()
    if len(a_children) != len(b_children):
        return False
    if a.text().strip() != b.text().strip():
        return False
    return all(same_structure(x, y) for x, y in zip(a_children, b_children))


class TestRoundTrip:
    def test_simple_document(self):
        first, second = roundtrip("<a><b x='1'>text</b><c/></a>")
        assert same_structure(first.root, second.root)

    def test_figure1_document(self, figure1_xml):
        first, second = roundtrip(figure1_xml)
        assert same_structure(first.root, second.root)

    def test_special_characters_escaped(self):
        first, second = roundtrip("<a t='a &amp; b'>1 &lt; 2 &amp; 3</a>")
        assert second.root.text() == "1 < 2 & 3"
        assert second.root.attributes["t"] == "a & b"

    def test_empty_element_compact_form(self):
        assert serialize_element(parse("<a/>").root).strip() == "<a/>"

    def test_non_pretty_single_line(self):
        text = serialize_element(parse("<a><b/></a>").root, pretty=False)
        assert "\n" not in text

    def test_declaration_emitted(self):
        assert serialize_document(parse("<a/>")).startswith(
            '<?xml version="1.0"?>'
        )


class TestSemanticSerialization:
    def test_concept_annotations_emitted(self, lexicon):
        tree = build_tree(parse("<films><picture/></films>").root)
        picture = tree.find("picture")
        output = serialize_semantic_tree(
            tree, {picture.index: "movie.n.01"}, lexicon
        )
        assert 'concept="movie.n.01"' in output
        assert 'gloss="a form of entertainment' in output

    def test_unannotated_nodes_untouched(self, lexicon):
        tree = build_tree(parse("<films><picture/></films>").root)
        output = serialize_semantic_tree(tree, {}, lexicon)
        assert "concept=" not in output
        assert "<films>" in output

    def test_value_tokens_serialized_as_token_elements(self, lexicon):
        tree = build_tree(parse("<cast>Kelly</cast>").root)
        token = [n for n in tree if n.label == "kelly"][0]
        output = serialize_semantic_tree(
            tree, {token.index: "kelly.n.01"}, lexicon
        )
        assert '<token value="kelly" concept="kelly.n.01"' in output

    def test_output_is_well_formed(self, lexicon):
        tree = build_tree(parse("<films><picture>Rear</picture></films>").root)
        annotated = serialize_semantic_tree(
            tree, {tree.find("picture").index: "movie.n.01"}, lexicon
        )
        reparsed = parse(annotated)
        assert reparsed.root.name == "films"
