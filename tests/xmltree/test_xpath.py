"""Unit tests for the XPath-lite query engine."""

from __future__ import annotations

import pytest

from repro.xmltree.dom import build_tree
from repro.xmltree.parser import parse
from repro.xmltree.xpath import XPathSyntaxError, parse_path, select, select_one

XML = """
<play>
  <title>Hamlet</title>
  <act>
    <title>One</title>
    <scene><title>Alpha</title><line>first verse</line></scene>
    <scene><title>Beta</title><line>second verse</line></scene>
  </act>
  <act>
    <title>Two</title>
    <scene><title>Gamma</title><line>third verse</line></scene>
  </act>
</play>
"""


@pytest.fixture()
def tree():
    return build_tree(parse(XML).root)


class TestChildSteps:
    def test_root_step(self, tree):
        assert [n.label for n in select(tree, "/play")] == ["play"]

    def test_wrong_root_no_match(self, tree):
        assert select(tree, "/movie") == []

    def test_nested_path(self, tree):
        scenes = select(tree, "/play/act/scene")
        assert len(scenes) == 3

    def test_document_order(self, tree):
        scenes = select(tree, "/play/act/scene")
        assert [n.index for n in scenes] == sorted(n.index for n in scenes)

    def test_wildcard(self, tree):
        children = select(tree, "/play/*")
        assert [n.label for n in children] == ["title", "act", "act"]


class TestDescendantSteps:
    def test_descendant_anywhere(self, tree):
        titles = select(tree, "//title")
        assert len(titles) == 6  # play + 2 acts + 3 scenes

    def test_descendant_below_step(self, tree):
        lines = select(tree, "/play/act//line")
        assert len(lines) == 3

    def test_descendant_matches_self(self, tree):
        acts = select(tree, "//act")
        lines_under_act = select(tree, "//act//line")
        assert len(acts) == 2 and len(lines_under_act) == 3


class TestPredicates:
    def test_position(self, tree):
        second = select(tree, "/play/act[2]")
        assert len(second) == 1
        # Its first scene title value tokens spell "scene 3".
        scene_titles = select(tree, "/play/act[2]/scene/title")
        assert len(scene_titles) == 1

    def test_position_per_parent(self, tree):
        firsts = select(tree, "/play/act/scene[1]")
        assert len(firsts) == 2  # one per act

    def test_existence_predicate(self, tree):
        with_lines = select(tree, "//scene[line]")
        assert len(with_lines) == 3
        assert select(tree, "//scene[speaker]") == []

    def test_value_predicate(self, tree):
        match = select(tree, "//scene[line=second verse]")
        assert len(match) == 1

    def test_select_one(self, tree):
        node = select_one(tree, "//scene")
        assert node is not None and node.label == "scene"
        assert select_one(tree, "//nothing") is None


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "path",
        ["", "act", "/play/[2]", "/play/act[", "/play//", "/play/act[0]",
         "/play/act[=x]"],
    )
    def test_malformed_paths(self, path):
        with pytest.raises(XPathSyntaxError):
            parse_path(path)

    def test_parse_structure(self):
        steps = parse_path("//act/scene[2]")
        assert steps[0].descendant and not steps[1].descendant
        assert steps[1].position == 2
